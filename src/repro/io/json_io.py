"""JSON serialization of AutoMoDe models.

Model exchange between organisations is one of the paper's motivations
("a design process typically spanning several companies"), so models need a
tool-independent textual form.  This module serializes the structural part
of the metamodel -- interfaces, hierarchy, channels, clocks, types, MTD/STD
graphs, expression behaviours -- to plain JSON and reconstructs it again.

Behaviour given by arbitrary Python callables (FunctionComponent, custom
StatefulComponent subclasses) cannot be serialized faithfully; such blocks
are emitted as structural stubs with a ``behavior: "opaque"`` marker and are
reconstructed as structure-only components.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..core.channels import Channel
from ..core.clocks import BASE_CLOCK, Clock, EventClock, PeriodicClock, every
from ..core.components import (Component, CompositeComponent,
                               ExpressionComponent)
from ..core.errors import SerializationError
from ..core.ports import Port, PortDirection
from ..core.types import (ANY, BOOL, FLOAT, INT, EnumType, FloatType, IntType,
                          Type)
from ..core.values import ABSENT, Stream, is_absent
from ..simulation.trace import SimulationTrace
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from ..notations.dfd import DataFlowDiagram
from ..notations.mtd import ModeTransitionDiagram
from ..notations.ssd import SSDComponent
from ..notations.std import StateTransitionDiagram


# --------------------------------------------------------------------------
# encoding
# --------------------------------------------------------------------------

def type_to_json(port_type: Type) -> Dict[str, Any]:
    if isinstance(port_type, EnumType):
        return {"kind": "enum", "name": port_type.name,
                "literals": list(port_type.literals)}
    if isinstance(port_type, IntType):
        return {"kind": "int", "low": port_type.low, "high": port_type.high}
    if isinstance(port_type, FloatType):
        return {"kind": "float", "low": port_type.low, "high": port_type.high}
    if port_type == BOOL:
        return {"kind": "bool"}
    if port_type == ANY or port_type is ANY:
        return {"kind": "any"}
    return {"kind": "opaque", "name": port_type.name}


def clock_to_json(clock: Clock) -> Dict[str, Any]:
    if isinstance(clock, PeriodicClock):
        return {"kind": "every", "period": clock.period, "phase": clock.phase}
    if isinstance(clock, EventClock):
        return {"kind": "event", "ticks": list(clock.ticks)}
    return {"kind": "base"}


def port_to_json(port: Port) -> Dict[str, Any]:
    return {"name": port.name, "direction": str(port.direction),
            "type": type_to_json(port.port_type),
            "clock": clock_to_json(port.clock),
            "description": port.description}


def channel_to_json(channel: Channel) -> Dict[str, Any]:
    return {"name": channel.name,
            "source": {"component": channel.source.component,
                       "port": channel.source.port},
            "destination": {"component": channel.destination.component,
                            "port": channel.destination.port},
            "delayed": channel.delayed}


def component_to_json(component: Component) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "name": component.name,
        "class": type(component).__name__,
        "description": component.description,
        "annotations": {key: value for key, value in component.annotations.items()
                        if isinstance(value, (str, int, float, bool, list))},
        "ports": [port_to_json(port) for port in component.ports()],
    }
    if isinstance(component, ExpressionComponent):
        data["behavior"] = "expressions"
        data["expressions"] = {name: expr.to_source()
                               for name, expr in component.output_expressions.items()}
    elif isinstance(component, ModeTransitionDiagram):
        data["behavior"] = "mtd"
        data["initial_mode"] = component.initial_mode
        data["modes"] = [{
            "name": mode.name,
            "description": mode.description,
            "behavior": component_to_json(mode.behavior)
            if mode.behavior is not None else None,
        } for mode in component.modes()]
        data["transitions"] = [{
            "source": t.source, "target": t.target,
            "guard": t.guard.to_source(), "priority": t.priority,
        } for t in component.transitions()]
    elif isinstance(component, StateTransitionDiagram):
        data["behavior"] = "std"
        data["initial_state"] = component.initial_state_name
        data["variables"] = component.variables()
        data["states"] = [{"name": state.name,
                           "emissions": {k: v.to_source()
                                         for k, v in state.emissions.items()}}
                          for state in component.states()]
        data["transitions"] = [{
            "source": t.source, "target": t.target, "guard": t.guard.to_source(),
            "actions": {k: v.to_source() for k, v in t.actions.items()},
            "priority": t.priority,
        } for t in component.transitions()]
    elif isinstance(component, CompositeComponent):
        data["behavior"] = "composite"
        data["notation"] = getattr(component, "notation", "composite")
        data["delayed_default"] = component.delayed_channels_by_default
        if isinstance(component, Cluster):
            data["rate"] = component.period
        data["subcomponents"] = [component_to_json(sub)
                                 for sub in component.subcomponents()]
        data["channels"] = [channel_to_json(channel)
                            for channel in component.channels()]
    else:
        data["behavior"] = "opaque"
    return data


def model_to_json(component: Component, indent: int = 2) -> str:
    """Serialize a component hierarchy to a JSON string."""
    return json.dumps(component_to_json(component), indent=indent, sort_keys=True)


# --------------------------------------------------------------------------
# decoding
# --------------------------------------------------------------------------

def type_from_json(data: Dict[str, Any]) -> Type:
    kind = data.get("kind", "any")
    if kind == "enum":
        return EnumType(data["name"], data["literals"])
    if kind == "int":
        return IntType(data.get("low"), data.get("high")) \
            if (data.get("low") is not None or data.get("high") is not None) else INT
    if kind == "float":
        return FloatType(data.get("low"), data.get("high")) \
            if (data.get("low") is not None or data.get("high") is not None) else FLOAT
    if kind == "bool":
        return BOOL
    return ANY


def clock_from_json(data: Dict[str, Any]) -> Clock:
    kind = data.get("kind", "base")
    if kind == "every":
        return every(int(data["period"]), int(data.get("phase", 0)))
    if kind == "event":
        return EventClock(data.get("ticks", []))
    return BASE_CLOCK


def _add_ports(component: Component, ports: List[Dict[str, Any]]) -> None:
    for port_data in ports:
        port_type = type_from_json(port_data.get("type", {}))
        clock = clock_from_json(port_data.get("clock", {}))
        if port_data["direction"] == "in":
            component.add_input(port_data["name"], port_type, clock,
                                port_data.get("description", ""))
        else:
            component.add_output(port_data["name"], port_type, clock,
                                 port_data.get("description", ""))


def component_from_json(data: Dict[str, Any]) -> Component:
    behavior = data.get("behavior", "opaque")
    name = data["name"]
    component: Component
    if behavior == "expressions":
        component = ExpressionComponent(name, data.get("expressions", {}),
                                        description=data.get("description", ""))
        _add_ports(component, data.get("ports", []))
    elif behavior == "mtd":
        mtd = ModeTransitionDiagram(name, description=data.get("description", ""))
        _add_ports(mtd, data.get("ports", []))
        for mode_data in data.get("modes", []):
            mode_behavior = (component_from_json(mode_data["behavior"])
                             if mode_data.get("behavior") else None)
            mtd.add_mode(mode_data["name"], mode_behavior,
                         initial=(mode_data["name"] == data.get("initial_mode")),
                         description=mode_data.get("description", ""))
        if data.get("initial_mode"):
            mtd.set_initial_mode(data["initial_mode"])
        for transition in data.get("transitions", []):
            mtd.add_transition(transition["source"], transition["target"],
                               transition["guard"],
                               priority=transition.get("priority", 0))
        component = mtd
    elif behavior == "std":
        std = StateTransitionDiagram(name, description=data.get("description", ""))
        _add_ports(std, data.get("ports", []))
        for variable, initial in (data.get("variables") or {}).items():
            std.add_variable(variable, initial)
        for state_data in data.get("states", []):
            std.add_state(state_data["name"],
                          initial=(state_data["name"] == data.get("initial_state")),
                          emissions=state_data.get("emissions"))
        if data.get("initial_state"):
            std.set_initial_state(data["initial_state"])
        for transition in data.get("transitions", []):
            std.add_transition(transition["source"], transition["target"],
                               transition["guard"],
                               actions=transition.get("actions"),
                               priority=transition.get("priority", 0))
        component = std
    elif behavior == "composite":
        notation = data.get("notation", "composite")
        if notation == "SSD":
            composite: CompositeComponent = SSDComponent(
                name, description=data.get("description", ""))
        elif notation == "DFD":
            composite = DataFlowDiagram(name, description=data.get("description", ""))
        elif notation == "CCD":
            composite = ClusterCommunicationDiagram(
                name, description=data.get("description", ""))
        elif notation == "Cluster":
            composite = Cluster(name, rate=every(int(data.get("rate", 1))),
                                description=data.get("description", ""))
        else:
            composite = CompositeComponent(
                name, description=data.get("description", ""),
                delayed_channels_by_default=data.get("delayed_default", False))
        _add_ports(composite, data.get("ports", []))
        for sub_data in data.get("subcomponents", []):
            sub = component_from_json(sub_data)
            if isinstance(composite, ClusterCommunicationDiagram) and \
                    not isinstance(sub, Cluster):
                CompositeComponent.add_subcomponent(composite, sub)
            else:
                composite.add_subcomponent(sub)
        for channel_data in data.get("channels", []):
            source = channel_data["source"]
            destination = channel_data["destination"]
            source_ref = (source["port"] if source["component"] is None
                          else f"{source['component']}.{source['port']}")
            destination_ref = (destination["port"]
                               if destination["component"] is None
                               else f"{destination['component']}.{destination['port']}")
            composite.connect(source_ref, destination_ref,
                              name=channel_data.get("name"),
                              delayed=channel_data.get("delayed", False))
        component = composite
    else:
        component = Component(name, description=data.get("description", ""))
        _add_ports(component, data.get("ports", []))
    for key, value in (data.get("annotations") or {}).items():
        component.annotate(key, value)
    return component


def model_from_json(text: str) -> Component:
    """Reconstruct a component hierarchy from its JSON form."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid model JSON: {exc}") from exc
    return component_from_json(data)


# --------------------------------------------------------------------------
# simulation traces
# --------------------------------------------------------------------------
#
# Traces interleave values with the absence value ("-" in the paper's
# Fig.-1 observation format), which JSON cannot represent in-band; each
# stream is therefore encoded as a values list (absent ticks carry null)
# plus an explicit boolean presence pattern, keeping "absent" and "a
# present None/null" distinguishable.

def _stream_to_json(stream: Stream) -> Dict[str, Any]:
    return {"values": [None if is_absent(value) else value
                       for value in stream],
            "presence": stream.presence_pattern()}


def _stream_from_json(data: Dict[str, Any]) -> Stream:
    values = data.get("values", [])
    presence = data.get("presence", [True] * len(values))
    if len(values) != len(presence):
        raise SerializationError(
            "trace stream has mismatched values/presence lengths "
            f"({len(values)} vs {len(presence)})")
    return Stream([value if present else ABSENT
                   for value, present in zip(values, presence)])


def trace_to_json_dict(trace: SimulationTrace) -> Dict[str, Any]:
    """Encode a simulation trace as a JSON-serializable dict.

    Values must be JSON-representable scalars (numbers, booleans, strings);
    this holds for every value the expression language and block library
    produce.
    """
    return {
        "component": trace.component_name,
        "ticks": trace.ticks,
        "inputs": {name: _stream_to_json(stream)
                   for name, stream in sorted(trace.inputs.items())},
        "outputs": {name: _stream_to_json(stream)
                    for name, stream in sorted(trace.outputs.items())},
        "mode_history": list(trace.mode_history),
    }


def trace_from_json_dict(data: Dict[str, Any]) -> SimulationTrace:
    """Reconstruct a :class:`SimulationTrace` encoded by
    :func:`trace_to_json_dict`."""
    trace = SimulationTrace(data.get("component", "<unknown>"))
    for name, stream_data in data.get("inputs", {}).items():
        trace.inputs[name] = _stream_from_json(stream_data)
    for name, stream_data in data.get("outputs", {}).items():
        trace.outputs[name] = _stream_from_json(stream_data)
    trace.mode_history = list(data.get("mode_history", []))
    trace.ticks = int(data.get("ticks", 0))
    return trace


def trace_to_json(trace: SimulationTrace, indent: int = 2) -> str:
    """Serialize a simulation trace to a JSON string."""
    return json.dumps(trace_to_json_dict(trace), indent=indent,
                      sort_keys=True)


def trace_from_json(text: str) -> SimulationTrace:
    """Reconstruct a simulation trace from its JSON string form."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid trace JSON: {exc}") from exc
    return trace_from_json_dict(data)
