"""Input/output utilities: DOT export, text rendering, JSON serialization."""

from .dot import composite_to_dot, mtd_to_dot, std_to_dot, to_dot
from .json_io import (component_from_json, component_to_json, model_from_json,
                      model_to_json, trace_from_json, trace_from_json_dict,
                      trace_to_json, trace_to_json_dict)
from .render import (render_ccd, render_interface, render_mtd, render_std,
                     render_structure, render_table)

__all__ = [
    "component_from_json", "component_to_json", "composite_to_dot",
    "model_from_json", "model_to_json", "mtd_to_dot", "render_ccd",
    "render_interface", "render_mtd", "render_std", "render_structure",
    "render_table", "std_to_dot", "to_dot", "trace_from_json",
    "trace_from_json_dict", "trace_to_json", "trace_to_json_dict",
]
