"""End-to-end timing analysis across tasks and bus frames.

Paper Sec. 3.2: "computations 'happening at the same time' in the FAA-, FDA-
or LA-level models are perfectly valid abstractions of sequential,
time-consuming computations on the level of the Operational Architecture if
the abstract model's computations are observed with a delay, such as the
delays introduced by SSD composition.  The duration of the delay then
defines the deadline for the sequential computation in the OA."

This module closes that loop for a deployed system: given a chain of
clusters (and the delays the abstract model grants along the chain), it
computes the end-to-end latency on the Technical Architecture -- task
response times plus CAN frame latencies -- and checks it against the
deadline implied by the logical delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.errors import SchedulingError
from .can import CANBus
from .ecu import TechnicalArchitecture
from .osek import response_time_analysis


@dataclass
class ChainStep:
    """One hop of an end-to-end cause-effect chain."""

    cluster: str
    ecu: Optional[str] = None
    task: Optional[str] = None
    response_time: Optional[float] = None
    frame: Optional[str] = None
    frame_latency: Optional[float] = None


@dataclass
class ChainAnalysis:
    """End-to-end latency of a cluster chain against its logical deadline."""

    chain: List[str]
    steps: List[ChainStep] = field(default_factory=list)
    logical_delays: int = 0
    base_period: int = 1

    @property
    def deadline(self) -> float:
        """Deadline implied by the abstract model's delays.

        Every logical delay grants one period of the *slowest* sampling along
        the chain (conservatively, the base period times the delay count when
        rates are uniform).
        """
        return float(max(1, self.logical_delays) * self.base_period)

    @property
    def end_to_end_latency(self) -> float:
        total = 0.0
        for step in self.steps:
            if step.response_time is not None:
                total += step.response_time
            if step.frame_latency is not None:
                total += step.frame_latency
        return total

    @property
    def meets_deadline(self) -> bool:
        return self.end_to_end_latency <= self.deadline

    def describe(self) -> str:
        lines = [f"end-to-end chain {' -> '.join(self.chain)}:"]
        for step in self.steps:
            parts = [f"  {step.cluster}"]
            if step.ecu:
                parts.append(f"on {step.ecu}/{step.task} "
                             f"(R={step.response_time:g})")
            if step.frame:
                parts.append(f"via frame {step.frame} "
                             f"(latency {step.frame_latency:g})")
            lines.append(" ".join(parts))
        lines.append(f"  total latency {self.end_to_end_latency:g} vs deadline "
                     f"{self.deadline:g} -> "
                     f"{'OK' if self.meets_deadline else 'VIOLATION'}")
        return "\n".join(lines)


def analyze_chain(chain: Sequence[str], architecture: TechnicalArchitecture,
                  bus: Optional[CANBus] = None,
                  frame_of_signal: Optional[Dict[str, str]] = None,
                  logical_delays: int = 1, base_period: int = 1) -> ChainAnalysis:
    """Compute the end-to-end latency of a cluster chain on a deployment.

    *frame_of_signal* maps ``"producer->consumer"`` cluster pairs to the CAN
    frame carrying the signal; pairs on the same ECU need no frame.
    """
    analysis = ChainAnalysis(chain=list(chain), logical_delays=logical_delays,
                             base_period=base_period)
    frame_of_signal = frame_of_signal or {}

    response_cache: Dict[str, Dict[str, float]] = {}
    for ecu in architecture.ecu_list():
        response_cache[ecu.name] = {
            result.task: (result.wcrt if result.wcrt is not None else float("inf"))
            for result in response_time_analysis(ecu)}

    for index, cluster_name in enumerate(chain):
        step = ChainStep(cluster=cluster_name)
        ecu_name = architecture.ecu_of_cluster(cluster_name)
        task = architecture.task_of_cluster(cluster_name)
        if ecu_name is None or task is None:
            raise SchedulingError(
                f"cluster {cluster_name!r} is not deployed to any task")
        step.ecu = ecu_name
        step.task = task.name
        step.response_time = response_cache[ecu_name][task.name]

        if index + 1 < len(chain):
            successor = chain[index + 1]
            successor_ecu = architecture.ecu_of_cluster(successor)
            if successor_ecu is not None and successor_ecu != ecu_name:
                key = f"{cluster_name}->{successor}"
                frame_name = frame_of_signal.get(key)
                if frame_name is None:
                    raise SchedulingError(
                        f"chain hop {key} crosses ECUs but no CAN frame is "
                        "assigned to the signal")
                if bus is None:
                    raise SchedulingError(
                        "a CAN bus is required for cross-ECU chain analysis")
                step.frame = frame_name
                step.frame_latency = bus.worst_case_latency(frame_name)
        analysis.steps.append(step)
    return analysis


def deadline_from_delays(delay_count: int, sample_period: int) -> int:
    """Deadline (in base ticks) granted by *delay_count* logical delays."""
    return max(1, delay_count) * sample_period
