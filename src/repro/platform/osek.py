"""OSEK-like fixed-priority preemptive scheduling (simulated substrate).

The paper's LA-level well-definedness conditions assume "an OSEK-conformant
operating system as a target platform, with inter-task communication between
tasks using data integrity mechanisms and fixed-priority, preemptive
scheduling" (Sec. 3.3), and the OA level is generated for such targets
(ERCOS/ASCET, Sec. 3.4).  Since the real RTOS and ECU hardware are not
available, this module provides

* a discrete-time **scheduler simulation** producing a per-tick execution
  trace, response times, preemption counts and deadline misses, and
* the classical **response-time analysis** fixed point for periodic tasks
  (Joseph/Pandya), used to check schedulability without simulation.

Both operate on the :class:`~repro.platform.ecu.Task` objects of the
Technical Architecture; one time tick of the scheduler equals one tick of
the AutoMoDe base clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.errors import SchedulingError
from .ecu import ECU, Task


@dataclass
class JobRecord:
    """One released job of a task in the scheduler simulation."""

    task: str
    release: int
    start: Optional[int] = None
    finish: Optional[int] = None
    deadline: int = 0

    @property
    def response_time(self) -> Optional[int]:
        if self.finish is None:
            return None
        return self.finish - self.release

    @property
    def missed_deadline(self) -> bool:
        return self.finish is None or self.finish > self.deadline


@dataclass
class ScheduleTrace:
    """Result of simulating one ECU's task set."""

    ecu: str
    horizon: int
    #: per-tick name of the running task ("" when idle)
    timeline: List[str] = field(default_factory=list)
    jobs: List[JobRecord] = field(default_factory=list)
    preemptions: int = 0

    def utilization(self) -> float:
        if not self.timeline:
            return 0.0
        busy = sum(1 for entry in self.timeline if entry)
        return busy / len(self.timeline)

    def response_times(self, task_name: str) -> List[int]:
        return [job.response_time for job in self.jobs
                if job.task == task_name and job.response_time is not None]

    def worst_case_response_time(self, task_name: str) -> Optional[int]:
        times = self.response_times(task_name)
        return max(times) if times else None

    def deadline_misses(self) -> List[JobRecord]:
        return [job for job in self.jobs if job.missed_deadline]

    def is_schedulable(self) -> bool:
        return not self.deadline_misses()

    def describe(self) -> str:
        lines = [f"schedule of ECU {self.ecu!r} over {self.horizon} ticks "
                 f"(utilization {self.utilization():.1%}, "
                 f"preemptions {self.preemptions}):"]
        tasks = sorted({job.task for job in self.jobs})
        for task in tasks:
            wcrt = self.worst_case_response_time(task)
            misses = sum(1 for job in self.deadline_misses() if job.task == task)
            lines.append(f"  {task}: WCRT={wcrt} deadline misses={misses}")
        return "\n".join(lines)


def simulate_schedule(ecu: ECU, horizon: Optional[int] = None) -> ScheduleTrace:
    """Simulate fixed-priority preemptive scheduling of one ECU.

    Execution times are scaled by the ECU's speed factor and rounded up to
    whole ticks.  The default horizon is twice the hyperperiod of the task
    set (enough to observe steady-state response times for offset-free
    periodic tasks).
    """
    tasks = ecu.task_list()
    if not tasks:
        raise SchedulingError(f"ECU {ecu.name!r} has no tasks to schedule")
    hyper = 1
    for task in tasks:
        hyper = hyper * task.period // math.gcd(hyper, task.period)
    if horizon is None:
        horizon = 2 * hyper

    scaled_wcet = {task.name: max(1, math.ceil(task.wcet / ecu.speed_factor))
                   for task in tasks}
    priority = {task.name: task.priority for task in tasks}

    trace = ScheduleTrace(ecu=ecu.name, horizon=horizon)
    ready: List[Dict] = []  # each: {job, remaining}
    running: Optional[Dict] = None

    for tick in range(horizon):
        # releases
        for task in tasks:
            if tick >= task.offset and (tick - task.offset) % task.period == 0:
                job = JobRecord(task=task.name, release=tick,
                                deadline=tick + (task.deadline or task.period))
                trace.jobs.append(job)
                ready.append({"job": job, "remaining": scaled_wcet[task.name]})
        # pick the highest-priority ready job (smallest priority number)
        if ready:
            ready.sort(key=lambda entry: (priority[entry["job"].task],
                                          entry["job"].release))
            best = ready[0]
            if running is not None and running is not best and running in ready:
                # a higher-priority job displaced the running one
                if priority[best["job"].task] < priority[running["job"].task]:
                    trace.preemptions += 1
            running = best
        else:
            running = None

        if running is None:
            trace.timeline.append("")
            continue
        job = running["job"]
        if job.start is None:
            job.start = tick
        trace.timeline.append(job.task)
        running["remaining"] -= 1
        if running["remaining"] <= 0:
            job.finish = tick + 1
            ready.remove(running)
            running = None
    return trace


@dataclass
class ResponseTimeResult:
    """Analytical worst-case response time of one task."""

    task: str
    wcrt: Optional[float]
    deadline: int
    schedulable: bool


def response_time_analysis(ecu: ECU) -> List[ResponseTimeResult]:
    """Classical fixed-point response-time analysis for the ECU's task set.

    ``R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j`` iterated to a fixed
    point; divergence beyond the deadline marks the task unschedulable.
    """
    tasks = ecu.task_list()
    results: List[ResponseTimeResult] = []
    for task in tasks:
        capacity = task.wcet / ecu.speed_factor
        higher = [other for other in tasks if other.priority < task.priority]
        response = capacity
        for _ in range(1000):
            interference = sum(
                math.ceil(response / other.period) * (other.wcet / ecu.speed_factor)
                for other in higher)
            next_response = capacity + interference
            if abs(next_response - response) < 1e-9:
                response = next_response
                break
            response = next_response
            if response > 10 * (task.deadline or task.period):
                response = math.inf
                break
        deadline = task.deadline or task.period
        schedulable = response <= deadline
        results.append(ResponseTimeResult(
            task=task.name,
            wcrt=None if math.isinf(response) else response,
            deadline=deadline,
            schedulable=schedulable))
    return results


def is_schedulable(ecu: ECU) -> bool:
    """True if every task meets its deadline per response-time analysis."""
    return all(result.schedulable for result in response_time_analysis(ecu))


def utilization_bound_check(ecu: ECU) -> Dict[str, float]:
    """Liu & Layland utilization test (sufficient condition, informational)."""
    tasks = ecu.task_list()
    n = len(tasks)
    utilization = ecu.utilization()
    bound = n * (2 ** (1.0 / n) - 1) if n else 1.0
    return {"utilization": utilization, "bound": bound,
            "passes": utilization <= bound}
