"""Simulated target platform: ECUs, OSEK-like scheduling, CAN, timing.

These modules stand in for the real automotive hardware/OS the paper assumes
(OSEK/ERCOS operating systems, CAN networks) so that deployment, the LA-level
well-definedness conditions and the OA generation can be exercised end to
end.  See DESIGN.md for the substitution rationale.
"""

from .can import BusTrace, CANBus, CANFrame, CANSignal
from .ecu import ECU, Task, TechnicalArchitecture
from .osek import (JobRecord, ResponseTimeResult, ScheduleTrace, is_schedulable,
                   response_time_analysis, simulate_schedule,
                   utilization_bound_check)
from .timing import (ChainAnalysis, ChainStep, analyze_chain,
                     deadline_from_delays)

__all__ = [
    "BusTrace", "CANBus", "CANFrame", "CANSignal", "ChainAnalysis",
    "ChainStep", "ECU", "JobRecord", "ResponseTimeResult", "ScheduleTrace",
    "Task", "TechnicalArchitecture", "analyze_chain", "deadline_from_delays",
    "is_schedulable", "response_time_analysis", "simulate_schedule",
    "utilization_bound_check",
]
