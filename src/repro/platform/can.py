"""CAN bus substrate (simulated).

"All signals between clusters deployed to different ECUs will be mapped to a
communication network, e.g. CAN, possibly considering an existing
communication matrix" (paper Sec. 3.4).  The real controller hardware is not
available, so this module provides the standard analytical and simulation
models used for automotive CAN design:

* :class:`CANFrame` / :class:`CANBus` -- frames with identifiers, payload
  sizes and periods on a bus with a configurable bit rate,
* frame **transmission time** including bit stuffing (classical worst case),
* **bus utilization** and priority-based **worst-case latency analysis**
  (Tindell/Burns busy-period formulation, simplified to integer frame slots),
* a tick-based **arbitration simulation** for observing actual frame
  sequences, used by the deployment benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import DeploymentError


@dataclass
class CANSignal:
    """One signal packed into a CAN frame."""

    name: str
    bits: int
    start_bit: int = 0
    sender_cluster: str = ""
    receiver_clusters: List[str] = field(default_factory=list)


@dataclass
class CANFrame:
    """A periodic CAN data frame."""

    name: str
    can_id: int
    period: int
    sender_ecu: str
    signals: List[CANSignal] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.can_id <= 0x7FF:
            raise DeploymentError(
                f"frame {self.name!r}: standard CAN identifiers are 11 bit")
        if self.period <= 0:
            raise DeploymentError(f"frame {self.name!r} needs a positive period")

    def payload_bits(self) -> int:
        return sum(signal.bits for signal in self.signals)

    def payload_bytes(self) -> int:
        return min(8, max(0, math.ceil(self.payload_bits() / 8)))

    def add_signal(self, signal: CANSignal) -> CANSignal:
        if self.payload_bits() + signal.bits > 64:
            raise DeploymentError(
                f"frame {self.name!r} cannot hold signal {signal.name!r}: "
                "payload would exceed 8 bytes")
        signal.start_bit = self.payload_bits()
        self.signals.append(signal)
        return signal

    def frame_bits(self) -> int:
        """Worst-case frame size on the wire including stuff bits.

        Standard 11-bit identifier data frame: 47 bits of overhead plus
        8 bits per payload byte; worst-case bit stuffing adds one stuff bit
        per 4 bits of the stuffable 34 + 8*n bit region.
        """
        payload = 8 * self.payload_bytes()
        stuffable = 34 + payload
        stuff_bits = stuffable // 4
        return 47 + payload + stuff_bits


@dataclass
class CANBus:
    """A CAN bus with a bit rate expressed in bits per base-clock tick."""

    name: str
    bits_per_tick: float = 500.0
    frames: Dict[str, CANFrame] = field(default_factory=dict)

    def add_frame(self, frame: CANFrame) -> CANFrame:
        if frame.name in self.frames:
            raise DeploymentError(f"bus {self.name!r} already has frame "
                                  f"{frame.name!r}")
        for existing in self.frames.values():
            if existing.can_id == frame.can_id:
                raise DeploymentError(
                    f"CAN identifier {frame.can_id:#x} is already used by "
                    f"frame {existing.name!r}")
        self.frames[frame.name] = frame
        return frame

    def frame(self, name: str) -> CANFrame:
        try:
            return self.frames[name]
        except KeyError as exc:
            raise DeploymentError(f"bus {self.name!r} has no frame {name!r}") from exc

    def frame_list(self) -> List[CANFrame]:
        """Frames sorted by arbitration priority (lower identifier first)."""
        return sorted(self.frames.values(), key=lambda f: f.can_id)

    # -- analysis ------------------------------------------------------------------
    def transmission_ticks(self, frame: CANFrame) -> float:
        """Time to transmit one frame, in base-clock ticks."""
        return frame.frame_bits() / self.bits_per_tick

    def utilization(self) -> float:
        """Fraction of bus capacity consumed by all periodic frames."""
        return sum(self.transmission_ticks(frame) / frame.period
                   for frame in self.frames.values())

    def worst_case_latency(self, frame_name: str) -> float:
        """Worst-case queueing + transmission latency of one frame.

        Simplified Tindell analysis: blocking by the longest lower-priority
        frame, interference by all higher-priority frames over the busy
        period, iterated to a fixed point, plus the frame's own transmission
        time.
        """
        frame = self.frame(frame_name)
        own_time = self.transmission_ticks(frame)
        higher = [other for other in self.frames.values()
                  if other.can_id < frame.can_id]
        lower = [other for other in self.frames.values()
                 if other.can_id > frame.can_id]
        blocking = max((self.transmission_ticks(other) for other in lower),
                       default=0.0)
        waiting = blocking
        for _ in range(1000):
            interference = sum(
                math.ceil((waiting + 1e-9) / other.period + 1e-12)
                * self.transmission_ticks(other)
                for other in higher)
            next_waiting = blocking + interference
            if abs(next_waiting - waiting) < 1e-9:
                waiting = next_waiting
                break
            waiting = next_waiting
            if waiting > 100 * frame.period:
                return math.inf
        return waiting + own_time

    def latency_report(self) -> List[Dict[str, float]]:
        """Per-frame utilization/latency summary sorted by priority."""
        report = []
        for frame in self.frame_list():
            report.append({
                "frame": frame.name,
                "can_id": frame.can_id,
                "period": frame.period,
                "payload_bytes": frame.payload_bytes(),
                "transmission": self.transmission_ticks(frame),
                "worst_case_latency": self.worst_case_latency(frame.name),
            })
        return report

    # -- simulation ------------------------------------------------------------------
    def simulate(self, horizon: int) -> "BusTrace":
        """Simulate priority-based arbitration over *horizon* ticks.

        Time advances in whole ticks; a frame occupies the bus for
        ``ceil(transmission_ticks)`` ticks; released frames queue and the
        lowest identifier wins arbitration whenever the bus goes idle.
        """
        trace = BusTrace(bus=self.name, horizon=horizon)
        queue: List[Tuple[int, CANFrame, int]] = []  # (can_id, frame, release)
        busy_until = 0
        current: Optional[Tuple[CANFrame, int]] = None
        for tick in range(horizon):
            for frame in self.frames.values():
                if tick % frame.period == 0:
                    queue.append((frame.can_id, frame, tick))
            if tick >= busy_until:
                if current is not None:
                    frame, release = current
                    trace.transmissions.append(
                        {"frame": frame.name, "release": release,
                         "start": busy_until - math.ceil(self.transmission_ticks(frame)),
                         "finish": busy_until,
                         "latency": busy_until - release})
                    current = None
                if queue:
                    queue.sort(key=lambda entry: (entry[0], entry[2]))
                    _, frame, release = queue.pop(0)
                    duration = max(1, math.ceil(self.transmission_ticks(frame)))
                    busy_until = tick + duration
                    current = (frame, release)
            trace.timeline.append(current[0].name if current is not None else "")
        return trace


@dataclass
class BusTrace:
    """Result of a CAN arbitration simulation."""

    bus: str
    horizon: int
    timeline: List[str] = field(default_factory=list)
    transmissions: List[Dict] = field(default_factory=list)

    def utilization(self) -> float:
        if not self.timeline:
            return 0.0
        return sum(1 for entry in self.timeline if entry) / len(self.timeline)

    def latencies(self, frame_name: str) -> List[int]:
        return [entry["latency"] for entry in self.transmissions
                if entry["frame"] == frame_name]

    def worst_observed_latency(self, frame_name: str) -> Optional[int]:
        values = self.latencies(frame_name)
        return max(values) if values else None
