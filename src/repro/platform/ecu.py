"""Technical Architecture elements: ECUs, tasks, networks (paper Sec. 3.3).

"The TA represents target platform components (ECUs, tasks, buses, message
frames) used to implement the system."  The classes here are deliberately
close to the vocabulary of OSEK-based automotive platforms (as referenced by
the paper's ERCOS citation): an ECU runs a set of periodic, fixed-priority
preemptive tasks; inter-ECU signals travel in CAN frames.

The actual scheduling and bus behaviour is simulated by
:mod:`repro.platform.osek` and :mod:`repro.platform.can`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import DeploymentError


@dataclass
class Task:
    """A periodic OSEK-style task on one ECU.

    ``period`` and ``offset`` are in base-clock ticks (the logical time base
    of the AutoMoDe model); ``wcet`` is the worst-case execution time in the
    same unit.  Smaller ``priority`` values mean higher priority, matching
    common automotive configuration tools.
    """

    name: str
    period: int
    priority: int
    wcet: float = 0.0
    offset: int = 0
    deadline: Optional[int] = None
    #: names of the clusters executed by this task, in execution order
    clusters: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise DeploymentError(f"task {self.name!r} needs a positive period")
        if self.offset < 0 or self.offset >= self.period:
            raise DeploymentError(
                f"task {self.name!r} offset must satisfy 0 <= offset < period")
        if self.deadline is None:
            self.deadline = self.period

    def utilization(self) -> float:
        return self.wcet / self.period if self.period else 0.0

    def add_cluster(self, cluster_name: str, wcet: float = 0.0) -> None:
        """Append a cluster to the task body and account for its WCET."""
        self.clusters.append(cluster_name)
        self.wcet += wcet

    def describe(self) -> str:
        body = ", ".join(self.clusters) if self.clusters else "(empty)"
        return (f"task {self.name}: period={self.period} prio={self.priority} "
                f"wcet={self.wcet:g} body=[{body}]")


@dataclass
class ECU:
    """One electronic control unit of the Technical Architecture."""

    name: str
    #: relative processing speed; WCETs are divided by this factor
    speed_factor: float = 1.0
    tasks: Dict[str, Task] = field(default_factory=dict)

    def add_task(self, task: Task) -> Task:
        if task.name in self.tasks:
            raise DeploymentError(
                f"ECU {self.name!r} already has a task {task.name!r}")
        self.tasks[task.name] = task
        return task

    def task(self, name: str) -> Task:
        try:
            return self.tasks[name]
        except KeyError as exc:
            raise DeploymentError(
                f"ECU {self.name!r} has no task {name!r}") from exc

    def task_list(self) -> List[Task]:
        return sorted(self.tasks.values(), key=lambda t: t.priority)

    def utilization(self) -> float:
        """Total processor utilization of all tasks (after speed scaling)."""
        return sum(task.wcet / self.speed_factor / task.period
                   for task in self.tasks.values())

    def cluster_names(self) -> List[str]:
        names: List[str] = []
        for task in self.task_list():
            names.extend(task.clusters)
        return names

    def describe(self) -> str:
        lines = [f"ECU {self.name} (speed x{self.speed_factor:g}, "
                 f"utilization {self.utilization():.1%}):"]
        lines.extend("  " + task.describe() for task in self.task_list())
        return "\n".join(lines)


@dataclass
class TechnicalArchitecture:
    """The complete target platform: ECUs plus the communication network."""

    name: str
    ecus: Dict[str, ECU] = field(default_factory=dict)
    #: name of the bus connecting the ECUs (one shared CAN bus is assumed)
    bus_name: str = "CAN1"

    def add_ecu(self, ecu: ECU) -> ECU:
        if ecu.name in self.ecus:
            raise DeploymentError(f"TA {self.name!r} already has ECU {ecu.name!r}")
        self.ecus[ecu.name] = ecu
        return ecu

    def ecu(self, name: str) -> ECU:
        try:
            return self.ecus[name]
        except KeyError as exc:
            raise DeploymentError(f"TA {self.name!r} has no ECU {name!r}") from exc

    def ecu_list(self) -> List[ECU]:
        return [self.ecus[name] for name in sorted(self.ecus)]

    def all_tasks(self) -> List[Task]:
        tasks: List[Task] = []
        for ecu in self.ecu_list():
            tasks.extend(ecu.task_list())
        return tasks

    def ecu_of_cluster(self, cluster_name: str) -> Optional[str]:
        for ecu in self.ecu_list():
            if cluster_name in ecu.cluster_names():
                return ecu.name
        return None

    def task_of_cluster(self, cluster_name: str) -> Optional[Task]:
        for ecu in self.ecu_list():
            for task in ecu.task_list():
                if cluster_name in task.clusters:
                    return task
        return None

    def describe(self) -> str:
        lines = [f"Technical architecture {self.name!r} (bus {self.bus_name}):"]
        for ecu in self.ecu_list():
            lines.append(ecu.describe())
        return "\n".join(lines)
