"""CCD well-definedness conditions (paper Sec. 3.3).

"For CCDs, well-definedness conditions can be specified that may depend on
the characteristics of a given Technical Architecture.  As an example,
consider an OSEK-conformant operating system as a target platform, with
inter-task communication using data integrity mechanisms and fixed-priority,
preemptive scheduling.  In this framework, communication from 'slower-rate'
clusters to a 'faster-rate' cluster necessitates the introduction of at
least one delay operator in the direction of data flow.  On the other hand,
communication in the opposite direction ... does not require introduction of
delays."

This module implements exactly that: a pluggable set of target-specific
condition profiles, with the OSEK fixed-priority preemptive profile as the
paper's reference example, plus a time-triggered profile for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.validation import Severity, ValidationReport
from ..notations.ccd import ClusterCommunicationDiagram


@dataclass
class TargetProfile:
    """Well-definedness conditions associated with one class of targets."""

    name: str
    description: str
    #: does a slow-to-fast rate transition require a delay operator?
    slow_to_fast_needs_delay: bool
    #: does a fast-to-slow rate transition require a delay operator?
    fast_to_slow_needs_delay: bool
    #: does same-rate cross-cluster communication require a delay operator?
    same_rate_needs_delay: bool = False


#: The paper's reference target: OSEK with data-integrity inter-task
#: communication and fixed-priority preemptive scheduling.
OSEK_FIXED_PRIORITY = TargetProfile(
    name="osek-fixed-priority",
    description=("OSEK-conformant OS, inter-task communication with data "
                 "integrity mechanisms, fixed-priority preemptive scheduling"),
    slow_to_fast_needs_delay=True,
    fast_to_slow_needs_delay=False,
)

#: A strictly time-triggered target where every cross-cluster exchange is
#: buffered at the slot boundary (both directions need delays).
TIME_TRIGGERED = TargetProfile(
    name="time-triggered",
    description="statically scheduled time-triggered target; all "
                "cross-cluster communication buffered at slot boundaries",
    slow_to_fast_needs_delay=True,
    fast_to_slow_needs_delay=True,
    same_rate_needs_delay=True,
)

PROFILES: Dict[str, TargetProfile] = {
    OSEK_FIXED_PRIORITY.name: OSEK_FIXED_PRIORITY,
    TIME_TRIGGERED.name: TIME_TRIGGERED,
}


@dataclass
class RateTransitionFinding:
    """Assessment of one inter-cluster channel against a target profile."""

    channel: str
    source: str
    destination: str
    direction: str
    source_period: int
    destination_period: int
    needs_delay: bool
    has_delay: bool

    @property
    def is_well_defined(self) -> bool:
        return self.has_delay or not self.needs_delay

    def describe(self) -> str:
        status = "ok" if self.is_well_defined else "MISSING DELAY"
        return (f"{self.channel}: {self.source}({self.source_period}) -> "
                f"{self.destination}({self.destination_period}) "
                f"[{self.direction}] {status}")


def check_rate_transitions(ccd: ClusterCommunicationDiagram,
                           profile: TargetProfile = OSEK_FIXED_PRIORITY
                           ) -> List[RateTransitionFinding]:
    """Evaluate every inter-cluster channel against the profile's rules."""
    findings: List[RateTransitionFinding] = []
    for entry in ccd.rate_transitions():
        direction = entry["direction"]
        if direction == "slow-to-fast":
            needs_delay = profile.slow_to_fast_needs_delay
        elif direction == "fast-to-slow":
            needs_delay = profile.fast_to_slow_needs_delay
        else:
            needs_delay = profile.same_rate_needs_delay
        findings.append(RateTransitionFinding(
            channel=entry["channel"].name,
            source=entry["source"],
            destination=entry["destination"],
            direction=direction,
            source_period=entry["source_period"],
            destination_period=entry["destination_period"],
            needs_delay=needs_delay,
            has_delay=entry["delayed"],
        ))
    return findings


def check_well_definedness(ccd: ClusterCommunicationDiagram,
                           profile: TargetProfile = OSEK_FIXED_PRIORITY
                           ) -> ValidationReport:
    """Full LA-level well-definedness check: structure + rate transitions."""
    report = ccd.validate()
    report.subject = (f"well-definedness of CCD {ccd.name!r} for target "
                      f"{profile.name!r}")
    for finding in check_rate_transitions(ccd, profile):
        if finding.is_well_defined:
            report.info("ccd-rate-transition", finding.describe(),
                        element=finding.channel)
        else:
            report.error(
                "ccd-rate-transition",
                f"{finding.describe()}: the {profile.name} target requires at "
                "least one delay operator in the direction of data flow",
                element=finding.channel,
                suggestion="mark the channel as delayed (insert a delay "
                           "operator) between the clusters")
    return report


def missing_delays(ccd: ClusterCommunicationDiagram,
                   profile: TargetProfile = OSEK_FIXED_PRIORITY) -> List[str]:
    """Names of channels that violate the profile's delay requirements."""
    return [finding.channel for finding in check_rate_transitions(ccd, profile)
            if not finding.is_well_defined]


def repair_rate_transitions(ccd: ClusterCommunicationDiagram,
                            profile: TargetProfile = OSEK_FIXED_PRIORITY
                            ) -> List[str]:
    """Insert the required delays in place and return the repaired channels.

    This is the obvious countermeasure a tool would offer next to the check;
    it mutates the channels' ``delayed`` flag (the modelling-level view of
    inserting a delay operator).
    """
    repaired: List[str] = []
    violating = set(missing_delays(ccd, profile))
    for channel in ccd.channels():
        if channel.name in violating:
            channel.delayed = True
            repaired.append(channel.name)
    return repaired
