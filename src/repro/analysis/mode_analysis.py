"""Global mode analysis (paper Sec. 5).

"The different modes in MTDs can be used in order to determine a global mode
transition system which is then correct by construction."  This module
builds that global mode transition system as the synchronous product of all
MTDs found in a component hierarchy:

* a global mode is a tuple of local modes (one per MTD),
* a global transition exists when, for some combination of local transitions
  (or local stuttering), the conjunction of guards is satisfiable on at least
  one input valuation drawn from a finite test vocabulary.

Because guards range over unbounded value domains, exact satisfiability is
undecidable in general; the product here is computed relative to a finite
*scenario vocabulary* of input valuations (explicitly supplied or sampled
from the guards' constants), which is both sound for the models in this
repository and mirrors what a tool prototype validating against simulation
scenarios would do.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.components import Component, CompositeComponent
from ..core.expr_eval import ExpressionEvaluator
from ..core.expressions import BinaryOp, Literal, walk
from ..core.values import ABSENT, is_present
from ..notations.mtd import ModeTransitionDiagram
from ..notations.std import StateTransitionDiagram


GlobalMode = Tuple[str, ...]


@dataclass
class GlobalTransition:
    """One transition of the global mode transition system."""

    source: GlobalMode
    target: GlobalMode
    witnesses: List[Dict[str, Any]] = field(default_factory=list)

    def describe(self) -> str:
        return f"{'/'.join(self.source)} -> {'/'.join(self.target)}"


@dataclass
class GlobalModeSystem:
    """The product automaton over all component MTDs."""

    mtd_names: List[str]
    initial: GlobalMode
    modes: Set[GlobalMode] = field(default_factory=set)
    transitions: List[GlobalTransition] = field(default_factory=list)

    def mode_count(self) -> int:
        return len(self.modes)

    def transition_count(self) -> int:
        return len(self.transitions)

    def reachable_from_initial(self) -> Set[GlobalMode]:
        adjacency: Dict[GlobalMode, Set[GlobalMode]] = {}
        for transition in self.transitions:
            adjacency.setdefault(transition.source, set()).add(transition.target)
        reachable = {self.initial}
        frontier = [self.initial]
        while frontier:
            current = frontier.pop()
            for successor in adjacency.get(current, ()):  # type: ignore[arg-type]
                if successor not in reachable:
                    reachable.add(successor)
                    frontier.append(successor)
        return reachable

    def unreachable_modes(self) -> Set[GlobalMode]:
        return self.modes - self.reachable_from_initial()

    def describe(self) -> str:
        lines = [f"global mode transition system over {', '.join(self.mtd_names)}:",
                 f"  initial: {'/'.join(self.initial)}",
                 f"  modes ({self.mode_count()}):"]
        for mode in sorted(self.modes):
            marker = "*" if mode == self.initial else " "
            lines.append(f"   {marker} {'/'.join(mode)}")
        lines.append(f"  transitions ({self.transition_count()}):")
        for transition in self.transitions:
            lines.append(f"    {transition.describe()}")
        return "\n".join(lines)


def find_mtds(root: Component) -> List[ModeTransitionDiagram]:
    """All MTDs in the hierarchy below *root* (including *root* itself)."""
    mtds: List[ModeTransitionDiagram] = []
    if isinstance(root, ModeTransitionDiagram):
        mtds.append(root)
    if isinstance(root, CompositeComponent):
        for _, component in root.walk():
            if isinstance(component, ModeTransitionDiagram) and component not in mtds:
                mtds.append(component)
    return mtds


def find_stds(root: Component) -> List[StateTransitionDiagram]:
    """All STDs in the hierarchy below *root* (including *root* itself).

    Derived from :func:`machine_inventory` so STDs nested as MTD mode
    behaviours or behind clock-gating wrappers are found too (plain
    ``walk()`` only descends composites).
    """
    stds: List[StateTransitionDiagram] = []
    for info in machine_inventory(root):
        if info.kind == "std" and info.component not in stds:
            stds.append(info.component)
    return stds


@dataclass
class MachineInfo:
    """One mode machine (MTD or STD) located in a component hierarchy.

    ``path`` is the hierarchical location (``root/sub/...``; clock-gating
    wrappers are transparent, MTD mode behaviours contribute the mode name
    as a path segment), which is what scenario coverage keys on.
    """

    path: str
    kind: str  # "mtd" | "std"
    component: Component
    modes: List[str]
    initial: Optional[str]
    transitions: List[Tuple[str, str]]


def machine_inventory(root: Component,
                      path: Optional[str] = None) -> List[MachineInfo]:
    """Inventory every MTD and STD below *root* with hierarchical paths.

    Complements :func:`find_mtds` (which flattens and loses location): the
    scenario coverage layer needs stable per-machine paths to attribute
    observed mode histories to the declared machines.
    """
    if path is None:
        path = root.name
    inner = getattr(root, "inner", None)
    if isinstance(inner, Component):  # clock-gating wrappers are transparent
        return machine_inventory(inner, path)
    infos: List[MachineInfo] = []
    if isinstance(root, ModeTransitionDiagram):
        infos.append(MachineInfo(
            path=path, kind="mtd", component=root,
            modes=root.mode_names(), initial=root.initial_mode,
            transitions=[(t.source, t.target) for t in root.transitions()]))
        for mode in root.modes():
            if mode.behavior is not None:
                infos.extend(machine_inventory(mode.behavior,
                                               f"{path}/{mode.name}"))
    elif isinstance(root, StateTransitionDiagram):
        infos.append(MachineInfo(
            path=path, kind="std", component=root,
            modes=root.state_names(), initial=root.initial_state_name,
            transitions=[(t.source, t.target) for t in root.transitions()]))
    elif isinstance(root, CompositeComponent):
        for sub in root.subcomponents():
            infos.extend(machine_inventory(sub, f"{path}/{sub.name}"))
    return infos


def _guard_constants(mtd: ModeTransitionDiagram) -> Dict[str, Set[Any]]:
    """Sample values per input name from the constants appearing in guards.

    For every comparison ``x <op> c`` the values ``c - 1``, ``c`` and ``c + 1``
    are added for numeric constants, plus the constant itself for booleans and
    enumeration literals.  This vocabulary is sufficient to distinguish all
    guard outcomes for the threshold-style guards used in automotive mode
    logic.
    """
    vocabulary: Dict[str, Set[Any]] = {name: set() for name in mtd.input_names()}
    for transition in mtd.transitions():
        for node in walk(transition.guard):
            if isinstance(node, BinaryOp):
                sides = [(node.left, node.right), (node.right, node.left)]
                for variable_side, literal_side in sides:
                    if hasattr(variable_side, "name") and isinstance(literal_side, Literal):
                        name = variable_side.name  # type: ignore[attr-defined]
                        if name not in vocabulary:
                            continue
                        value = literal_side.value
                        if isinstance(value, bool) or isinstance(value, str):
                            vocabulary[name].add(value)
                        elif isinstance(value, (int, float)):
                            vocabulary[name].update({value - 1, value, value + 1})
    for name, values in vocabulary.items():
        if not values:
            values.update({True, False, 0, 1})
        if any(isinstance(v, bool) for v in values):
            values.update({True, False})
    return vocabulary


def guard_vocabulary(root: Component) -> Dict[str, List[Any]]:
    """Boundary-value vocabulary per input name over *all* machines below
    *root*.

    Merges the guard-constant sampling of every MTD **and** STD found by
    :func:`machine_inventory` (not just the MTDs the global product uses):
    for each input read by some guard the values just below, at and just
    above every comparison constant.  This is the value pool a
    coverage-guided scenario search mutates stimuli from -- threshold-style
    automotive mode logic is fully distinguished by exactly these values.

    Inputs whose guards mention numeric constants drop the boolean filler
    values; inputs without any guard constants keep the generic
    ``{False, True, 0, 1}`` pool.
    """
    merged: Dict[str, Set[Any]] = {}
    for info in machine_inventory(root):
        machine = info.component
        if not isinstance(machine, (ModeTransitionDiagram,
                                    StateTransitionDiagram)):
            continue
        for name, values in _guard_constants(machine).items():
            merged.setdefault(name, set()).update(values)
    vocabulary: Dict[str, List[Any]] = {}
    for name, values in merged.items():
        numeric = {value for value in values
                   if isinstance(value, (int, float))
                   and not isinstance(value, bool)}
        chosen = numeric if numeric else values
        vocabulary[name] = sorted(chosen, key=repr)
    return vocabulary


def _merge_vocabularies(mtds: Iterable[ModeTransitionDiagram]) -> Dict[str, List[Any]]:
    merged: Dict[str, Set[Any]] = {}
    for mtd in mtds:
        for name, values in _guard_constants(mtd).items():
            merged.setdefault(name, set()).update(values)
    return {name: sorted(values, key=repr) for name, values in merged.items()}


def _scenario_valuations(vocabulary: Mapping[str, List[Any]],
                         limit: int = 4096) -> List[Dict[str, Any]]:
    """Cartesian scenarios over the vocabulary, capped at *limit* entries."""
    names = sorted(vocabulary)
    if not names:
        return [{}]
    pools = [vocabulary[name] for name in names]
    scenarios: List[Dict[str, Any]] = []
    for combination in itertools.product(*pools):
        scenarios.append(dict(zip(names, combination)))
        if len(scenarios) >= limit:
            break
    return scenarios


def build_global_mode_system(root: Component,
                             scenarios: Optional[List[Dict[str, Any]]] = None,
                             scenario_limit: int = 4096) -> GlobalModeSystem:
    """Build the global mode transition system of all MTDs below *root*."""
    mtds = find_mtds(root)
    if not mtds:
        return GlobalModeSystem(mtd_names=[], initial=(), modes={()})
    evaluator = ExpressionEvaluator()
    if scenarios is None:
        scenarios = _scenario_valuations(_merge_vocabularies(mtds), scenario_limit)

    initial: GlobalMode = tuple(mtd.initial_mode or "" for mtd in mtds)
    system = GlobalModeSystem(mtd_names=[mtd.name for mtd in mtds], initial=initial)
    system.modes.add(initial)

    transition_index: Dict[Tuple[GlobalMode, GlobalMode], GlobalTransition] = {}
    frontier: List[GlobalMode] = [initial]
    explored: Set[GlobalMode] = set()

    while frontier:
        current = frontier.pop()
        if current in explored:
            continue
        explored.add(current)
        for scenario in scenarios:
            successor: List[str] = []
            for index, mtd in enumerate(mtds):
                local_mode = current[index]
                next_mode = local_mode
                for transition in mtd.transitions_from(local_mode):
                    environment = {name: scenario.get(name, ABSENT)
                                   for name in mtd.input_names()}
                    value = evaluator.evaluate(transition.guard, environment)
                    if is_present(value) and bool(value):
                        next_mode = transition.target
                        break
                successor.append(next_mode)
            target: GlobalMode = tuple(successor)
            if target == current:
                continue
            system.modes.add(target)
            key = (current, target)
            if key not in transition_index:
                entry = GlobalTransition(source=current, target=target)
                transition_index[key] = entry
                system.transitions.append(entry)
            if len(transition_index[key].witnesses) < 3:
                transition_index[key].witnesses.append(dict(scenario))
            if target not in explored:
                frontier.append(target)
    return system


def mode_explicitness_summary(root: Component) -> Dict[str, Any]:
    """Summary used by the case-study benchmark: how explicit are the modes."""
    mtds = find_mtds(root)
    total_modes = sum(len(mtd.modes()) for mtd in mtds)
    total_transitions = sum(len(mtd.transitions()) for mtd in mtds)
    return {
        "mtd_count": len(mtds),
        "explicit_modes": total_modes,
        "mode_transitions": total_transitions,
        "mtd_names": [mtd.name for mtd in mtds],
    }
