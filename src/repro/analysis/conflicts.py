"""FAA-level rule-based conflict analysis (paper Sec. 3.1).

"Based on the functional structure and dependencies, rules identify possible
conflicts (e.g. two vehicle functions access the same actuator) and suggest
suitable countermeasures to resolve them (e.g. introduce a coordinating
functionality)."

Vehicle functions declare the sensors and actuators they use through
component annotations (``annotate("actuators", [...])`` /
``annotate("sensors", [...])``) or, structurally, through channels to
components annotated as ``role="actuator"`` / ``role="sensor"``.  The
analysis reports

* **actuator conflicts** -- two or more functions driving the same actuator,
* **shared sensors** (informational) -- relevant for failure analysis,
* **coordination suggestions** -- the countermeasure the paper names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core.components import Component, CompositeComponent
from ..core.validation import Severity, ValidationReport


ACTUATOR_ANNOTATION = "actuators"
SENSOR_ANNOTATION = "sensors"
ROLE_ANNOTATION = "role"


@dataclass
class ActuatorConflict:
    """Two or more vehicle functions competing for the same actuator."""

    actuator: str
    functions: List[str]

    def suggestion(self) -> str:
        joined = ", ".join(self.functions)
        return (f"introduce a coordinating functionality arbitrating access of "
                f"{joined} to actuator {self.actuator!r}")


@dataclass
class ConflictAnalysis:
    """Result of the FAA conflict rules for one functional network."""

    network: str
    actuator_usage: Dict[str, List[str]] = field(default_factory=dict)
    sensor_usage: Dict[str, List[str]] = field(default_factory=dict)
    conflicts: List[ActuatorConflict] = field(default_factory=list)

    def has_conflicts(self) -> bool:
        return bool(self.conflicts)

    def conflicting_actuators(self) -> List[str]:
        return [conflict.actuator for conflict in self.conflicts]

    def to_report(self) -> ValidationReport:
        report = ValidationReport(f"FAA conflict analysis of {self.network!r}")
        for conflict in self.conflicts:
            report.warning(
                "faa-actuator-conflict",
                f"functions {', '.join(conflict.functions)} all access "
                f"actuator {conflict.actuator!r}",
                element=conflict.actuator,
                suggestion=conflict.suggestion())
        for sensor, users in sorted(self.sensor_usage.items()):
            if len(users) > 1:
                report.info("faa-shared-sensor",
                            f"sensor {sensor!r} is read by {', '.join(users)}",
                            element=sensor)
        return report


def _declared(component: Component, annotation: str) -> Set[str]:
    value = component.annotations.get(annotation, ())
    if isinstance(value, str):
        return {value}
    return set(value)


def _structural_resources(network: CompositeComponent,
                          role: str) -> Dict[str, Set[str]]:
    """Resources used via channels to components annotated with *role*.

    Returns ``resource component name -> set of function names`` using it.
    For actuators the using function is the channel *source*; for sensors it
    is the channel *destination*.
    """
    resource_names = {component.name for component in network.subcomponents()
                      if component.annotations.get(ROLE_ANNOTATION) == role}
    usage: Dict[str, Set[str]] = {name: set() for name in resource_names}
    for channel in network.internal_channels():
        source = channel.source.component
        destination = channel.destination.component
        if role == "actuator" and destination in resource_names and source:
            usage[destination].add(source)
        if role == "sensor" and source in resource_names and destination:
            usage[source].add(destination)
    return usage


def analyze_conflicts(network: CompositeComponent) -> ConflictAnalysis:
    """Run the FAA conflict rules over a functional network (SSD)."""
    analysis = ConflictAnalysis(network=network.name)

    actuator_usage: Dict[str, Set[str]] = {}
    sensor_usage: Dict[str, Set[str]] = {}

    functions = [component for component in network.subcomponents()
                 if component.annotations.get(ROLE_ANNOTATION)
                 not in ("actuator", "sensor")]
    for component in functions:
        for actuator in _declared(component, ACTUATOR_ANNOTATION):
            actuator_usage.setdefault(actuator, set()).add(component.name)
        for sensor in _declared(component, SENSOR_ANNOTATION):
            sensor_usage.setdefault(sensor, set()).add(component.name)

    for actuator, users in _structural_resources(network, "actuator").items():
        actuator_usage.setdefault(actuator, set()).update(users)
    for sensor, users in _structural_resources(network, "sensor").items():
        sensor_usage.setdefault(sensor, set()).update(users)

    analysis.actuator_usage = {name: sorted(users)
                               for name, users in sorted(actuator_usage.items())}
    analysis.sensor_usage = {name: sorted(users)
                             for name, users in sorted(sensor_usage.items())}

    for actuator, users in analysis.actuator_usage.items():
        if len(users) > 1:
            analysis.conflicts.append(ActuatorConflict(actuator, users))
    return analysis


def suggest_coordinator_name(conflict: ActuatorConflict) -> str:
    """Conventional name for the coordinating functionality to introduce."""
    return f"{conflict.actuator}Coordinator"
