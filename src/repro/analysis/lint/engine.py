"""The lint engine: one entry point per subject kind, one report out.

* :func:`lint_component` -- model-level analysis of a component hierarchy:
  whole-hierarchy causality, expression abstract interpretation of every
  :class:`ExpressionComponent`, and the machine-level checks of every
  MTD/STD (including mode behaviours and clock-gated inners);
* :func:`lint_schedule` -- IR dataflow verification of a compiled
  :class:`FlatSchedule` (plus the batch-sweep certification);
* :func:`lint_model` -- both: the hierarchy *and*, when the model is
  flattenable, the schedule it compiles to;
* :func:`verify_component` -- :func:`lint_model` that raises
  :class:`~repro.core.errors.ValidationError` on any error finding (this
  is what ``compile_component(..., verify=True)`` calls);
* :func:`lint_well_definedness` / :func:`lint_conflicts` /
  :func:`lint_causality` -- the legacy LA/FAA analyses adopted into the
  unified :class:`Finding` schema (stable rule ids preserved), so every
  analysis in the repository exports through one JSON/SARIF path.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ...core.components import (Component, CompositeComponent,
                                ExpressionComponent)
from ...core.errors import SimulationError
from ...notations.ccd import ClusterCommunicationDiagram
from ...notations.mtd import ModeTransitionDiagram
from ...simulation.causality import analyze_causality
from ...simulation.schedule_ir import FlatSchedule, compile_flat, is_flattenable
from .expr_check import lint_expression_component
from .findings import Finding, LintReport, findings_from_report
from .ir_verify import lint_flat_schedule
from .machine_check import lint_machines
from .registry import get_rule


def _walk_components(component: Component,
                     path: Optional[str] = None
                     ) -> Iterator[Tuple[str, Component]]:
    """Every component below (and including) *component*, with paths.

    Unlike ``CompositeComponent.walk`` this descends through clock-gating
    wrappers (their ``inner``) and into MTD mode behaviours, so expression
    components buried anywhere in the hierarchy are linted.
    """
    if path is None:
        path = component.name
    yield path, component
    inner = getattr(component, "inner", None)
    if isinstance(inner, Component):
        yield from _walk_components(inner, path)
        return
    if isinstance(component, ModeTransitionDiagram):
        for mode in component.modes():
            if mode.behavior is not None:
                yield from _walk_components(mode.behavior,
                                            f"{path}/{mode.name}")
    elif isinstance(component, CompositeComponent):
        for sub in component.subcomponents():
            yield from _walk_components(sub, f"{path}/{sub.name}")


def lint_component(component: Component,
                   subject: Optional[str] = None) -> LintReport:
    """Model-level lint of a component hierarchy (no compilation needed)."""
    report = LintReport(subject or component.name)

    analysis = analyze_causality(component)
    for result in analysis.cycles():
        rule = get_rule("causality")
        report.add(Finding(
            rule="causality", severity=rule.default_severity,
            message=f"{result.component!r}: instantaneous loop through "
                    f"{', '.join(result.cycle)}",
            element=result.component,
            suggestion="insert a unit delay or an SSD-level (delayed) "
                       "channel into the loop",
            location={"cycle": list(result.cycle)}))

    for path, sub in _walk_components(component):
        if isinstance(sub, ExpressionComponent):
            report.extend(lint_expression_component(sub, path))

    report.extend(lint_machines(component))
    return report


def lint_schedule(schedule: FlatSchedule,
                  subject: Optional[str] = None) -> LintReport:
    """IR dataflow verification of one compiled flat schedule."""
    return lint_flat_schedule(schedule, subject=subject)


def lint_model(component: Component,
               include_schedule: bool = True) -> LintReport:
    """Full lint: the hierarchy plus (when flattenable) its compiled IR."""
    report = lint_component(component)
    if include_schedule and component.has_behavior() \
            and not report.errors() and is_flattenable(component):
        try:
            schedule = compile_flat(component)
        except SimulationError:
            # not compilable as-is (e.g. unsupported leaf): model-level
            # findings still stand, the IR layer simply has no subject
            return report
        report.merge(lint_schedule(schedule,
                                   subject=f"{report.subject} [flat IR]"))
    return report


def verify_component(component: Component) -> LintReport:
    """Lint and raise :class:`ValidationError` on any error finding."""
    report = lint_model(component)
    report.raise_on_errors()
    return report


# ---------------------------------------------------------------------------
# Legacy analyses adopted into the unified schema (satellite: one export
# path for check_well_definedness / check_rate_transitions /
# analyze_conflicts / causality, stable rule ids preserved).
# ---------------------------------------------------------------------------


def lint_causality(component: Component) -> LintReport:
    """Whole-hierarchy causality as a :class:`LintReport` (rule
    ``causality``), including the per-composite evaluation-order infos."""
    legacy = analyze_causality(component).to_report()
    report = LintReport(legacy.subject)
    report.extend(findings_from_report(legacy))
    return report


def lint_well_definedness(ccd: ClusterCommunicationDiagram,
                          profile=None) -> LintReport:
    """LA-level CCD well-definedness (rule ``ccd-rate-transition`` plus the
    CCD notation rules) in the unified schema."""
    from ..well_definedness import OSEK_FIXED_PRIORITY, check_well_definedness
    legacy = check_well_definedness(ccd, profile or OSEK_FIXED_PRIORITY)
    report = LintReport(legacy.subject)
    report.extend(findings_from_report(legacy))
    return report


def lint_conflicts(network: CompositeComponent) -> LintReport:
    """FAA conflict analysis (rules ``faa-actuator-conflict`` /
    ``faa-shared-sensor``) in the unified schema."""
    from ..conflicts import analyze_conflicts
    legacy = analyze_conflicts(network).to_report()
    report = LintReport(legacy.subject)
    report.extend(findings_from_report(legacy))
    return report
