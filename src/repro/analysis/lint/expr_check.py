"""Abstract interpretation of base-language expressions.

Expressions are analysed over an **interval x type x ABSENT** lattice: an
:class:`AbstractValue` tracks which abstract kinds a value may have
(boolean / numeric / enumeration / struct), numeric bounds when the port
types provide them, whether the value may be :data:`~repro.core.values.ABSENT`
at run time, and a constant when the expression is closed.  The transfer
functions mirror :class:`~repro.core.expr_eval.ExpressionEvaluator`
exactly -- including ABSENT propagation and short-circuit ``and``/``or``
-- so every claim ("this divisor may be zero", "this guard is constant")
is a statement about the real runtime semantics.

Rules discharged here:

* ``expr-unknown-name`` -- a variable not bound in the context environment
  (the static counterpart of the evaluator's ``unknown name`` error, which
  is exactly the failure class the IR verifier promises compiled schedules
  never hit);
* ``expr-unknown-function`` -- a call the evaluator's function table does
  not define;
* ``expr-div-by-zero`` -- a divisor that is provably zero (error) or whose
  bounded interval contains zero (warning); unbounded divisors are not
  flagged (too weak a claim to act on);
* ``expr-type-mismatch`` -- operators whose operand kinds cannot combine
  (arithmetic on enumerations, ordering enums against numbers);
* ``expr-output-type`` / ``expr-undeclared-output`` -- expression
  components whose inferred output kind contradicts the declared port
  type, or which define expressions for undeclared ports;
* ``expr-constant-guard`` -- reported by the machine layer from the
  constness this module computes (interval reasoning proves guards like
  ``speed < -5`` constant-false for ``speed: float[0..300]``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ...core.components import Component, ExpressionComponent
from ...core.expr_eval import BUILTIN_FUNCTIONS
from ...core.expressions import (BinaryOp, Call, Conditional, Expression,
                                 Literal, Present, UnaryOp, Variable)
from ...core.types import (AnyType, BoolType, EnumType, FloatType, IntType,
                           StructType, Type)
from ...core.validation import Severity
from .findings import Finding
from .registry import get_rule

#: Sentinel: "no constant known" (any value incl. None may be a constant).
_NO_CONST = object()

_ALL_KINDS = frozenset({"bool", "num", "enum", "struct"})
_NUMERIC = frozenset({"bool", "num"})


@dataclass(frozen=True)
class AbstractValue:
    """One point of the interval x type x ABSENT lattice.

    ``kinds`` is the set of abstract kinds the (present) value may have;
    ``low``/``high`` bound numeric values when known; ``may_absent`` is
    True when the value can be ABSENT at run time; ``const`` is the value
    the expression always evaluates to *when present* (``_NO_CONST`` when
    unknown).
    """

    kinds: frozenset = _ALL_KINDS
    low: Optional[float] = None
    high: Optional[float] = None
    may_absent: bool = False
    const: Any = _NO_CONST

    @property
    def is_top(self) -> bool:
        return self.kinds == _ALL_KINDS

    def join(self, other: "AbstractValue") -> "AbstractValue":
        low = None if self.low is None or other.low is None \
            else min(self.low, other.low)
        high = None if self.high is None or other.high is None \
            else max(self.high, other.high)
        const = self.const if (self.const is not _NO_CONST
                               and other.const is not _NO_CONST
                               and self.const == other.const) else _NO_CONST
        return AbstractValue(self.kinds | other.kinds, low, high,
                             self.may_absent or other.may_absent, const)


TOP = AbstractValue(may_absent=True)
BOOL_VALUE = AbstractValue(kinds=frozenset({"bool"}), low=0, high=1)
NUM_VALUE = AbstractValue(kinds=frozenset({"num"}))


def abstract_of_type(port_type: Type,
                     may_absent: bool = True) -> AbstractValue:
    """The abstract value of a port of the given declared type."""
    if isinstance(port_type, BoolType):
        return replace(BOOL_VALUE, may_absent=may_absent)
    if isinstance(port_type, (IntType, FloatType)):
        return AbstractValue(kinds=frozenset({"num"}), low=port_type.low,
                             high=port_type.high, may_absent=may_absent)
    if isinstance(port_type, EnumType):
        return AbstractValue(kinds=frozenset({"enum"}),
                             may_absent=may_absent)
    if isinstance(port_type, StructType):
        return AbstractValue(kinds=frozenset({"struct"}),
                             may_absent=may_absent)
    return replace(TOP, may_absent=may_absent)


def abstract_of_value(value: Any,
                      may_absent: bool = False) -> AbstractValue:
    """The abstract value of a concrete constant (e.g. an STD variable)."""
    if isinstance(value, bool):
        return AbstractValue(kinds=frozenset({"bool"}), low=int(value),
                             high=int(value), may_absent=may_absent,
                             const=value)
    if isinstance(value, (int, float)):
        return AbstractValue(kinds=frozenset({"num"}), low=value,
                             high=value, may_absent=may_absent, const=value)
    if isinstance(value, str):
        return AbstractValue(kinds=frozenset({"enum"}),
                             may_absent=may_absent, const=value)
    if isinstance(value, dict):
        return AbstractValue(kinds=frozenset({"struct"}),
                             may_absent=may_absent)
    return replace(TOP, may_absent=may_absent)


def environment_of_ports(component: Component) -> Dict[str, AbstractValue]:
    """Input environment of a component: declared types, possibly absent."""
    return {port.name: abstract_of_type(port.port_type, may_absent=True)
            for port in component.input_ports()}


def _finding(rule_id: str, message: str, element: str,
             severity: Optional[Severity] = None,
             suggestion: str = "", **location: Any) -> Finding:
    rule = get_rule(rule_id)
    if severity is None:
        severity = rule.default_severity if rule else Severity.WARNING
    return Finding(rule=rule_id, severity=severity, message=message,
                   element=element, suggestion=suggestion,
                   location={k: v for k, v in location.items()
                             if v is not None})


class _Analyzer:
    """One abstract-interpretation pass over a single expression."""

    def __init__(self, env: Mapping[str, AbstractValue],
                 functions: Optional[Mapping[str, Any]], element: str):
        self.env = env
        self.functions = functions if functions is not None \
            else BUILTIN_FUNCTIONS
        self.element = element
        self.findings: List[Finding] = []

    # -- helpers -----------------------------------------------------------

    def _warn(self, rule_id: str, message: str, **location: Any) -> None:
        self.findings.append(_finding(rule_id, message, self.element,
                                      **location))

    def _error(self, rule_id: str, message: str, **location: Any) -> None:
        self.findings.append(_finding(rule_id, message, self.element,
                                      severity=Severity.ERROR, **location))

    # -- the transfer functions --------------------------------------------

    def visit(self, expression: Expression) -> AbstractValue:
        if isinstance(expression, Literal):
            return abstract_of_value(expression.value)
        if isinstance(expression, Variable):
            value = self.env.get(expression.name)
            if value is None:
                self._error(
                    "expr-unknown-name",
                    f"expression {expression.to_source()} reads "
                    f"{expression.name!r} which is not bound in this "
                    f"context (known: {sorted(self.env)})",
                    name=expression.name)
                return TOP
            return value
        if isinstance(expression, Present):
            # present() turns absence into an ordinary boolean
            return BOOL_VALUE
        if isinstance(expression, UnaryOp):
            return self._visit_unary(expression)
        if isinstance(expression, BinaryOp):
            return self._visit_binary(expression)
        if isinstance(expression, Conditional):
            condition = self.visit(expression.condition)
            then_value = self.visit(expression.then_branch)
            else_value = self.visit(expression.else_branch)
            if condition.const is True:
                result = then_value
            elif condition.const is False:
                result = else_value
            else:
                result = then_value.join(else_value)
            if condition.may_absent:
                result = replace(result, may_absent=True,
                                 const=result.const)
            return result
        if isinstance(expression, Call):
            return self._visit_call(expression)
        return TOP

    def _visit_unary(self, expression: UnaryOp) -> AbstractValue:
        operand = self.visit(expression.operand)
        if expression.op == "-":
            if not operand.is_top and not (operand.kinds & _NUMERIC):
                self._warn(
                    "expr-type-mismatch",
                    f"unary '-' applied to a non-numeric operand in "
                    f"{expression.to_source()}")
            low = None if operand.high is None else -operand.high
            high = None if operand.low is None else -operand.low
            const = _NO_CONST
            if operand.const is not _NO_CONST \
                    and isinstance(operand.const, (int, float)):
                const = -operand.const
            return AbstractValue(frozenset({"num"}), low, high,
                                 operand.may_absent, const)
        if expression.op == "not":
            const = _NO_CONST
            if operand.const is not _NO_CONST:
                const = not operand.const
            return AbstractValue(frozenset({"bool"}), 0, 1,
                                 operand.may_absent, const)
        return replace(TOP, may_absent=operand.may_absent)

    def _visit_binary(self, expression: BinaryOp) -> AbstractValue:
        op = expression.op
        if op in ("and", "or"):
            left = self.visit(expression.left)
            right = self.visit(expression.right)
            const = _NO_CONST
            if left.const is not _NO_CONST:
                if op == "and" and not left.const:
                    const = False
                elif op == "or" and left.const:
                    const = True
                elif right.const is not _NO_CONST:
                    const = bool(right.const) if op == "and" \
                        else bool(right.const)
            may_absent = left.may_absent or right.may_absent
            return AbstractValue(frozenset({"bool"}), 0, 1, may_absent,
                                 const)

        left = self.visit(expression.left)
        right = self.visit(expression.right)
        may_absent = left.may_absent or right.may_absent

        if op == "/":
            return self._visit_division(expression, left, right, may_absent)
        if op in ("+", "-", "*", "%"):
            for side, name in ((left, "left"), (right, "right")):
                if not side.is_top and not (side.kinds & _NUMERIC):
                    self._warn(
                        "expr-type-mismatch",
                        f"arithmetic {op!r} applied to a non-numeric "
                        f"{name} operand in {expression.to_source()}")
            low, high = _arith_bounds(op, left, right)
            const = _const_binary(op, left, right)
            return AbstractValue(frozenset({"num"}), low, high, may_absent,
                                 const)
        if op in ("<", "<=", ">", ">="):
            if not _orderable(left, right):
                self._warn(
                    "expr-type-mismatch",
                    f"ordering {op!r} between incomparable operand types "
                    f"in {expression.to_source()} (raises at evaluation "
                    f"time when both operands are present)")
            const = _const_binary(op, left, right)
            if const is _NO_CONST:
                const = _interval_comparison(op, left, right)
            return AbstractValue(frozenset({"bool"}), 0, 1, may_absent,
                                 const)
        if op in ("==", "!="):
            const = _const_binary(op, left, right)
            if const is _NO_CONST and not (left.kinds & right.kinds):
                # disjoint kinds: equality is decided without an error
                const = (op == "!=")
            return AbstractValue(frozenset({"bool"}), 0, 1, may_absent,
                                 const)
        return replace(TOP, may_absent=may_absent)

    def _visit_division(self, expression: BinaryOp, left: AbstractValue,
                        right: AbstractValue,
                        may_absent: bool) -> AbstractValue:
        if right.const is not _NO_CONST \
                and isinstance(right.const, (int, float)) \
                and right.const == 0:
            self._error(
                "expr-div-by-zero",
                f"division by zero: the divisor of "
                f"{expression.to_source()} is constant 0",
                divisor=repr(right.const))
        elif right.const is _NO_CONST and right.low is not None \
                and right.high is not None and right.low <= 0 <= right.high:
            self._warn(
                "expr-div-by-zero",
                f"possible division by zero in {expression.to_source()}: "
                f"the divisor ranges over [{right.low}..{right.high}] "
                f"which contains 0",
                low=right.low, high=right.high)
        for side, name in ((left, "left"), (right, "right")):
            if not side.is_top and not (side.kinds & _NUMERIC):
                self._warn(
                    "expr-type-mismatch",
                    f"division applied to a non-numeric {name} operand "
                    f"in {expression.to_source()}")
        const = _NO_CONST
        if left.const is not _NO_CONST and right.const is not _NO_CONST \
                and isinstance(right.const, (int, float)) \
                and right.const != 0:
            try:
                const = _const_eval("/", left.const, right.const)
            except Exception:  # noqa: BLE001 - stay abstract on failure
                const = _NO_CONST
        return AbstractValue(frozenset({"num"}), None, None, may_absent,
                             const)

    def _visit_call(self, expression: Call) -> AbstractValue:
        arguments = [self.visit(arg) for arg in expression.arguments]
        may_absent = any(arg.may_absent for arg in arguments)
        function = self.functions.get(expression.function)
        if function is None:
            self._error(
                "expr-unknown-function",
                f"call of unknown function {expression.function!r} in "
                f"{expression.to_source()} (known: "
                f"{sorted(self.functions)})",
                function=expression.function)
            return replace(TOP, may_absent=may_absent)
        if all(arg.const is not _NO_CONST for arg in arguments):
            try:
                value = function(*[arg.const for arg in arguments])
            except Exception:  # noqa: BLE001 - stay abstract on failure
                pass
            else:
                return replace(abstract_of_value(value),
                               may_absent=may_absent)
        kinds = frozenset({"num"}) if expression.function != "present" \
            else frozenset({"bool"})
        low = high = None
        if expression.function == "abs":
            low = 0
        elif expression.function in ("min", "max") and arguments:
            lows = [arg.low for arg in arguments]
            highs = [arg.high for arg in arguments]
            if all(bound is not None for bound in lows):
                low = min(lows) if expression.function == "min" \
                    else max(lows)
            if all(bound is not None for bound in highs):
                high = min(highs) if expression.function == "min" \
                    else max(highs)
        return AbstractValue(kinds, low, high, may_absent, _NO_CONST)


def _orderable(left: AbstractValue, right: AbstractValue) -> bool:
    if (left.kinds & _NUMERIC) and (right.kinds & _NUMERIC):
        return True
    return bool("enum" in left.kinds and "enum" in right.kinds)


def _arith_bounds(op: str, left: AbstractValue,
                  right: AbstractValue) -> Tuple[Optional[float],
                                                 Optional[float]]:
    ll, lh, rl, rh = left.low, left.high, right.low, right.high
    if op == "+":
        low = None if ll is None or rl is None else ll + rl
        high = None if lh is None or rh is None else lh + rh
        return low, high
    if op == "-":
        low = None if ll is None or rh is None else ll - rh
        high = None if lh is None or rl is None else lh - rl
        return low, high
    if op == "*":
        if None in (ll, lh, rl, rh):
            return None, None
        products = [ll * rl, ll * rh, lh * rl, lh * rh]
        return min(products), max(products)
    return None, None  # '%': bounds omitted (sign semantics are subtle)


def _const_eval(op: str, left: Any, right: Any) -> Any:
    from ...core.expr_eval import _ARITHMETIC_OPS
    if op == "/":
        if isinstance(left, int) and isinstance(right, int) \
                and left % right == 0:
            return left // right
        return left / right
    return _ARITHMETIC_OPS[op](left, right)


def _const_binary(op: str, left: AbstractValue,
                  right: AbstractValue) -> Any:
    if left.const is _NO_CONST or right.const is _NO_CONST:
        return _NO_CONST
    try:
        return _const_eval(op, left.const, right.const)
    except Exception:  # noqa: BLE001 - stay abstract on failure
        return _NO_CONST


def _interval_comparison(op: str, left: AbstractValue,
                         right: AbstractValue) -> Any:
    """Decide a comparison from the operand intervals, when possible."""
    ll, lh, rl, rh = left.low, left.high, right.low, right.high
    if op == "<":
        if lh is not None and rl is not None and lh < rl:
            return True
        if ll is not None and rh is not None and ll >= rh:
            return False
    elif op == "<=":
        if lh is not None and rl is not None and lh <= rl:
            return True
        if ll is not None and rh is not None and ll > rh:
            return False
    elif op == ">":
        if ll is not None and rh is not None and ll > rh:
            return True
        if lh is not None and rl is not None and lh <= rl:
            return False
    elif op == ">=":
        if ll is not None and rh is not None and ll >= rh:
            return True
        if lh is not None and rl is not None and lh < rl:
            return False
    return _NO_CONST


def check_expression(expression: Expression,
                     env: Mapping[str, AbstractValue],
                     element: str,
                     functions: Optional[Mapping[str, Any]] = None
                     ) -> Tuple[AbstractValue, List[Finding]]:
    """Analyse one expression; returns its abstract value and findings."""
    analyzer = _Analyzer(env, functions, element)
    value = analyzer.visit(expression)
    return value, analyzer.findings


def lint_expression_component(component: ExpressionComponent,
                              path: Optional[str] = None) -> List[Finding]:
    """All expression-layer findings of one expression component."""
    path = path or component.name
    env = environment_of_ports(component)
    functions = component._evaluator.functions  # noqa: SLF001
    findings: List[Finding] = []
    declared = set(component.output_names())
    for name, expression in component.output_expressions.items():
        element = f"{path}.{name}"
        value, expr_findings = check_expression(expression, env, element,
                                                functions)
        findings.extend(expr_findings)
        if name not in declared:
            findings.append(_finding(
                "expr-undeclared-output",
                f"expression for {name!r} has no matching declared output "
                f"port on {component.name!r} (it is evaluated every tick "
                f"but its value is dropped)",
                element, suggestion=f"declare an output port {name!r} or "
                                    f"remove the expression"))
            continue
        port_type = component.port(name).port_type
        if not _kind_compatible(value, port_type):
            findings.append(_finding(
                "expr-output-type",
                f"expression for output {name!r} has inferred kind(s) "
                f"{sorted(value.kinds)} incompatible with the declared "
                f"port type {port_type!r}",
                element, kinds=sorted(value.kinds),
                declared=repr(port_type)))
    return findings


def _kind_compatible(value: AbstractValue, port_type: Type) -> bool:
    if value.is_top or isinstance(port_type, (AnyType, StructType)):
        return True
    if isinstance(port_type, BoolType):
        return "bool" in value.kinds
    if isinstance(port_type, (IntType, FloatType)):
        return bool(value.kinds & _NUMERIC)
    if isinstance(port_type, EnumType):
        return "enum" in value.kinds
    return True
