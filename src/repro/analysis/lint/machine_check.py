"""Machine-level lint: MTD / STD reachability, determinism and guards.

Complements the notation ``validate()`` rule sets: where
``mtd-determinism`` / ``std-determinism`` only catch *textually identical*
guards, ``machine-guard-overlap`` decides **satisfiability** -- two
same-priority transitions from one state are flagged when a single input
valuation (drawn from the boundary-value vocabulary of
:mod:`repro.analysis.mode_analysis`) makes both guards true with different
targets, i.e. the model's determinism rests solely on transition insertion
order.  Guards, actions and emissions are additionally run through the
expression abstract interpreter, which discharges ``expr-unknown-name`` /
``expr-div-by-zero`` inside machines and proves guards constant
(``expr-constant-guard``: a constant-false guard is a dead transition; a
constant-true guard is only flagged when it shadows another transition).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Union

from ...core.components import Component
from ...core.errors import ExpressionEvalError
from ...core.expressions import BinaryOp, Literal, walk
from ...core.validation import Severity
from ...core.values import ABSENT, is_present
from ...notations.mtd import ModeTransitionDiagram
from ...notations.std import StateTransitionDiagram
from ..mode_analysis import machine_inventory
from .expr_check import (_NO_CONST, AbstractValue, abstract_of_type,
                         abstract_of_value, check_expression)
from .findings import Finding
from .registry import get_rule

Machine = Union[ModeTransitionDiagram, StateTransitionDiagram]

#: Cap on the valuations tried per machine for overlap satisfiability.
_OVERLAP_VALUATION_LIMIT = 512


def _finding(rule_id: str, message: str, element: str,
             severity: Optional[Severity] = None, suggestion: str = "",
             **location: Any) -> Finding:
    rule = get_rule(rule_id)
    if severity is None:
        severity = rule.default_severity if rule else Severity.WARNING
    return Finding(rule=rule_id, severity=severity, message=message,
                   element=element, suggestion=suggestion,
                   location={k: v for k, v in location.items()
                             if v is not None})


def _machine_environment(machine: Machine) -> Dict[str, AbstractValue]:
    """The abstract environment machine expressions are evaluated in.

    Inputs carry their declared types and may be absent; STD local
    variables carry only the *kind* of their initial value -- the value
    itself changes at run time, so keeping the constant or bounds would
    manufacture false "constant guard" proofs.
    """
    env: Dict[str, AbstractValue] = {}
    if isinstance(machine, StateTransitionDiagram):
        for name, initial in machine.variables().items():
            env[name] = replace(abstract_of_value(initial), low=None,
                                high=None, const=_NO_CONST)
    for port in machine.input_ports():
        env[port.name] = abstract_of_type(port.port_type, may_absent=True)
    return env


def _vocabulary(machine: Machine) -> Dict[str, List[Any]]:
    """Boundary-value pools per guard name (inputs *and* STD variables).

    Same c-1 / c / c+1 sampling as ``mode_analysis._guard_constants`` but
    keyed on every name a guard may read, so STD guards over local
    variables get valuations too.
    """
    names: Set[str] = set(machine.input_names())
    if isinstance(machine, StateTransitionDiagram):
        names |= set(machine.variables())
    pools: Dict[str, Set[Any]] = {name: set() for name in names}
    for transition in machine.transitions():
        for node in walk(transition.guard):
            if not isinstance(node, BinaryOp):
                continue
            sides = [(node.left, node.right), (node.right, node.left)]
            for variable_side, literal_side in sides:
                name = getattr(variable_side, "name", None)
                if name not in pools or not isinstance(literal_side, Literal):
                    continue
                value = literal_side.value
                if isinstance(value, (bool, str)):
                    pools[name].add(value)
                elif isinstance(value, (int, float)):
                    pools[name].update({value - 1, value, value + 1})
    for name, values in pools.items():
        if not values:
            values.update({True, False, 0, 1})
        if any(isinstance(v, bool) for v in values):
            values.update({True, False})
    return {name: sorted(values, key=repr) for name, values in pools.items()}


def _valuations(vocabulary: Mapping[str, List[Any]],
                limit: int = _OVERLAP_VALUATION_LIMIT
                ) -> List[Dict[str, Any]]:
    names = sorted(vocabulary)
    if not names:
        return [{}]
    valuations: List[Dict[str, Any]] = []
    for combination in itertools.product(*(vocabulary[n] for n in names)):
        valuations.append(dict(zip(names, combination)))
        if len(valuations) >= limit:
            break
    return valuations


def _guard_fires(machine: Machine, guard: Any,
                 valuation: Mapping[str, Any]) -> bool:
    environment = {name: valuation.get(name, ABSENT)
                   for name in machine.input_names()}
    if isinstance(machine, StateTransitionDiagram):
        for name in machine.variables():
            environment.setdefault(name, valuation.get(name, ABSENT))
    try:
        value = machine._evaluator.evaluate(guard, environment)  # noqa: SLF001
    except ExpressionEvalError:
        return False
    return is_present(value) and bool(value)


def _check_unreachable(machine: Machine, path: str) -> List[Finding]:
    if isinstance(machine, ModeTransitionDiagram):
        kind, names, initial = "mode", machine.mode_names(), \
            machine.initial_mode
        reachable = machine.reachable_modes()
    else:
        kind, names, initial = "state", machine.state_names(), \
            machine.initial_state_name
        reachable = machine.reachable_states()
    findings = []
    for name in names:
        if name not in reachable:
            findings.append(_finding(
                "machine-unreachable",
                f"{kind} {name!r} of {machine.name!r} is unreachable from "
                f"the initial {kind} {initial!r}",
                f"{path}:{name}", kind=kind, initial=initial,
                suggestion=f"add a transition path to {name!r} or remove "
                           f"the {kind}"))
    return findings


def _check_guard_overlap(machine: Machine, path: str) -> List[Finding]:
    transitions = machine.transitions()
    if len(transitions) < 2:
        return []
    valuations = _valuations(_vocabulary(machine))
    findings: List[Finding] = []
    by_source: Dict[str, List[Any]] = {}
    for transition in transitions:
        by_source.setdefault(transition.source, []).append(transition)
    for source, outgoing in by_source.items():
        for first, second in itertools.combinations(outgoing, 2):
            if first.priority != second.priority:
                continue
            if first.target == second.target:
                continue
            witness = None
            for valuation in valuations:
                if _guard_fires(machine, first.guard, valuation) \
                        and _guard_fires(machine, second.guard, valuation):
                    witness = valuation
                    break
            if witness is None:
                continue
            findings.append(_finding(
                "machine-guard-overlap",
                f"transitions {first.describe()} and {second.describe()} "
                f"from {source!r} have equal priority {first.priority} and "
                f"are both satisfied by {witness!r}: which one fires is "
                f"decided only by insertion order",
                f"{path}:{source}",
                witness={k: repr(v) for k, v in witness.items()},
                priority=first.priority,
                suggestion="give the transitions distinct priorities or "
                           "make their guards mutually exclusive"))
    return findings


def _check_expressions(machine: Machine, path: str) -> List[Finding]:
    env = _machine_environment(machine)
    functions = machine._evaluator.functions  # noqa: SLF001
    findings: List[Finding] = []
    for transition in machine.transitions():
        element = f"{path}:{transition.source}->{transition.target}"
        value, guard_findings = check_expression(
            transition.guard, env, element, functions)
        findings.extend(guard_findings)
        if value.const is False:
            findings.append(_finding(
                "expr-constant-guard",
                f"guard {transition.guard.to_source()} of transition "
                f"{transition.describe()} is constant false: the "
                f"transition can never fire",
                element, const=False,
                suggestion="remove the dead transition or fix the guard"))
        elif value.const is True and not value.may_absent \
                and _shadows_another(machine, transition):
            findings.append(_finding(
                "expr-constant-guard",
                f"guard {transition.guard.to_source()} of transition "
                f"{transition.describe()} is constant true and shadows "
                f"every lower-priority transition from "
                f"{transition.source!r}",
                element, const=True,
                suggestion="guard the transition or remove the shadowed "
                           "ones"))
        for name, expression in getattr(transition, "actions",
                                        {}).items():
            _, action_findings = check_expression(
                expression, env, f"{element}/{name}", functions)
            findings.extend(action_findings)
    if isinstance(machine, StateTransitionDiagram):
        for state in machine.states():
            for name, expression in state.emissions.items():
                _, emission_findings = check_expression(
                    expression, env, f"{path}:{state.name}/{name}",
                    functions)
                findings.extend(emission_findings)
    return findings


def _shadows_another(machine: Machine, transition: Any) -> bool:
    """True if a lower-ranked transition leaves the same source state."""
    outgoing: Sequence[Any] = machine.transitions_from(transition.source)
    ranked = list(outgoing)
    if transition not in ranked:
        return False
    return ranked.index(transition) < len(ranked) - 1


def lint_machine(machine: Machine,
                 path: Optional[str] = None) -> List[Finding]:
    """All machine-layer findings of one MTD or STD."""
    path = path or machine.name
    findings = _check_unreachable(machine, path)
    findings.extend(_check_guard_overlap(machine, path))
    findings.extend(_check_expressions(machine, path))
    return findings


def lint_machines(root: Component) -> List[Finding]:
    """Machine-layer findings of every MTD/STD below *root*.

    Uses :func:`~repro.analysis.mode_analysis.machine_inventory`, so
    machines nested as MTD mode behaviours or behind clock-gating wrappers
    are found, each anchored to its hierarchical path.
    """
    findings: List[Finding] = []
    for info in machine_inventory(root):
        machine = info.component
        if isinstance(machine, (ModeTransitionDiagram,
                                StateTransitionDiagram)):
            findings.extend(lint_machine(machine, info.path))
    return findings
