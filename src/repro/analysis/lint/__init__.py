"""``repro.analysis.lint`` -- the unified static-analysis engine.

Prove schedules safe before a single tick runs: IR dataflow verification
over :class:`~repro.simulation.schedule_ir.FlatSchedule` programs,
interval x type x ABSENT abstract interpretation of base-language
expressions, machine-level MTD/STD checks, and the legacy model-level
analyses -- all reporting through one :class:`Finding` schema with stable
rule ids, JSON and SARIF 2.1.0 export, and a ``python -m
repro.analysis.lint`` CLI.
"""

from .engine import (lint_causality, lint_component, lint_conflicts,
                     lint_model, lint_schedule, lint_well_definedness,
                     verify_component)
from .expr_check import (AbstractValue, abstract_of_type, abstract_of_value,
                         check_expression, environment_of_ports,
                         lint_expression_component)
from .findings import (FINDING_SCHEMA_VERSION, Finding, LintReport,
                       findings_from_report, to_sarif)
from .ir_verify import certify_batch, lint_flat_schedule
from .machine_check import lint_machine, lint_machines
from .registry import LintRule, all_rules, get_rule, register, rule_ids

__all__ = [
    "FINDING_SCHEMA_VERSION",
    "AbstractValue",
    "Finding",
    "LintReport",
    "LintRule",
    "abstract_of_type",
    "abstract_of_value",
    "all_rules",
    "certify_batch",
    "check_expression",
    "environment_of_ports",
    "findings_from_report",
    "get_rule",
    "lint_causality",
    "lint_component",
    "lint_conflicts",
    "lint_expression_component",
    "lint_flat_schedule",
    "lint_machine",
    "lint_machines",
    "lint_model",
    "lint_schedule",
    "lint_well_definedness",
    "register",
    "rule_ids",
    "to_sarif",
    "verify_component",
]
