"""The unified finding schema of the static-analysis engine.

Every analysis in this repository -- IR dataflow verification, expression
abstract interpretation, machine-level checks, causality, the CCD
well-definedness conditions, FAA conflict detection -- reports through one
schema: a :class:`Finding` with a stable rule id (registered in
:mod:`repro.analysis.lint.registry`), a severity, a human message and a
machine-readable location.  A :class:`LintReport` collects findings per
subject and exports them as JSON (one stable dict shape) and as SARIF 2.1.0
(the interchange format CI code-scanning UIs ingest).

The schema is a superset of the older
:class:`~repro.core.validation.Issue`/``ValidationReport`` pair;
:func:`findings_from_report` adopts legacy reports losslessly (rule ids are
preserved), so the notation ``validate()`` rule sets and the LA-level
checks export through the same path as the new verifier.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ...core.errors import ValidationError
from ...core.validation import Severity, ValidationReport

#: Schema version of the JSON export (bump on incompatible shape changes).
FINDING_SCHEMA_VERSION = 1

#: SARIF level per severity (SARIF has no separate "info" failure level).
_SARIF_LEVELS = {Severity.INFO: "note", Severity.WARNING: "warning",
                 Severity.ERROR: "error"}


@dataclass
class Finding:
    """One static-analysis finding.

    ``rule`` is a stable registered rule id, ``element`` the model element
    (hierarchical path, slot name, transition...) the finding is anchored
    to, and ``location`` an optional machine-readable dict (op index, slot
    index, witness valuation...) whose keys are rule-specific but stable
    per rule.
    """

    rule: str
    severity: Severity
    message: str
    subject: str = ""
    element: str = ""
    suggestion: str = ""
    location: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        where = f" [{self.element}]" if self.element else ""
        hint = f" -- suggestion: {self.suggestion}" if self.suggestion else ""
        return f"{self.severity}: ({self.rule}){where} {self.message}{hint}"

    def to_json_dict(self) -> Dict[str, Any]:
        """The stable JSON shape of one finding."""
        out: Dict[str, Any] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "subject": self.subject,
            "element": self.element,
        }
        if self.suggestion:
            out["suggestion"] = self.suggestion
        if self.location:
            out["location"] = dict(self.location)
        return out


class LintReport:
    """All findings produced by analysing one subject (model or schedule)."""

    def __init__(self, subject: str,
                 findings: Optional[Iterable[Finding]] = None):
        self.subject = subject
        self.findings: List[Finding] = list(findings or ())

    # -- building ----------------------------------------------------------

    def add(self, finding: Finding) -> Finding:
        if not finding.subject:
            finding.subject = self.subject
        self.findings.append(finding)
        return finding

    def extend(self, findings: Iterable[Finding]) -> None:
        for finding in findings:
            self.add(finding)

    def merge(self, other: "LintReport") -> None:
        self.extend(other.findings)

    # -- queries -----------------------------------------------------------

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.INFO]

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def is_clean(self, worst_allowed: Severity = Severity.WARNING) -> bool:
        """True if no finding is more severe than *worst_allowed*."""
        if worst_allowed is Severity.ERROR:
            return True
        if worst_allowed is Severity.WARNING:
            return not self.errors()
        return not self.errors() and not self.warnings()

    def raise_on_errors(self) -> None:
        """Raise :class:`ValidationError` summarising all errors, if any."""
        errors = self.errors()
        if errors:
            details = "; ".join(finding.describe() for finding in errors)
            raise ValidationError(
                f"{self.subject}: {len(errors)} static-analysis "
                f"error(s): {details}")

    def summary(self) -> str:
        return (f"{self.subject}: {len(self.errors())} error(s), "
                f"{len(self.warnings())} warning(s), "
                f"{len(self.infos())} info(s)")

    def describe(self) -> str:
        lines = [self.summary()]
        lines.extend("  " + finding.describe() for finding in self.findings)
        return "\n".join(lines)

    # -- export ------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": FINDING_SCHEMA_VERSION,
            "subject": self.subject,
            "counts": {"error": len(self.errors()),
                       "warning": len(self.warnings()),
                       "info": len(self.infos())},
            "findings": [finding.to_json_dict()
                         for finding in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True,
                          default=repr)

    def __repr__(self) -> str:
        return f"LintReport({self.subject!r}, findings={len(self.findings)})"


def findings_from_report(report: ValidationReport,
                         subject: str = "") -> List[Finding]:
    """Adopt a legacy :class:`ValidationReport` as :class:`Finding` objects.

    Rule ids are preserved verbatim -- the registry registers the legacy
    ids -- so notation ``validate()`` output and the LA-level checks export
    through the same JSON/SARIF path as the new analyses.
    """
    subject = subject or report.subject
    return [Finding(rule=issue.rule, severity=issue.severity,
                    message=issue.message, subject=subject,
                    element=issue.element, suggestion=issue.suggestion)
            for issue in report.issues]


def to_sarif(reports: Iterable[LintReport],
             tool_version: str = "1.0.0") -> Dict[str, Any]:
    """Export one or more reports as a SARIF 2.1.0 log (one run).

    Rule metadata comes from the registry; unregistered rule ids (custom
    rules added by downstream users) still export with a minimal
    descriptor, so the log always validates.
    """
    from .registry import get_rule
    reports = list(reports)
    rule_ids: List[str] = []
    for report in reports:
        for finding in report.findings:
            if finding.rule not in rule_ids:
                rule_ids.append(finding.rule)
    rule_index = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    descriptors = []
    for rule_id in rule_ids:
        rule = get_rule(rule_id)
        descriptor: Dict[str, Any] = {"id": rule_id}
        if rule is not None:
            descriptor["shortDescription"] = {"text": rule.summary}
            descriptor["defaultConfiguration"] = {
                "level": _SARIF_LEVELS[rule.default_severity]}
            descriptor["properties"] = {"layer": rule.layer}
        descriptors.append(descriptor)
    results = []
    for report in reports:
        for finding in report.findings:
            message = finding.message
            if finding.suggestion:
                message += f" (suggestion: {finding.suggestion})"
            result: Dict[str, Any] = {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": _SARIF_LEVELS[finding.severity],
                "message": {"text": message},
                "locations": [{
                    "logicalLocations": [{
                        "fullyQualifiedName":
                            finding.element or finding.subject,
                    }],
                }],
                "properties": {"subject": finding.subject},
            }
            if finding.location:
                result["properties"]["location"] = {
                    key: value for key, value in finding.location.items()}
            results.append(result)
    return {
        "version": "2.1.0",
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://example.invalid/repro/analysis/lint",
                "version": tool_version,
                "rules": descriptors,
            }},
            "results": results,
        }],
    }
