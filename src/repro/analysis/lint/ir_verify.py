"""Static dataflow verification of flat-schedule op programs.

The :class:`~repro.simulation.schedule_ir.FlatSchedule` IR is the substrate
every compiled execution shares (flat and batch backends run it directly;
the planned native codegen will emit C from it).  At that level "the model
is well-formed" becomes concrete dataflow obligations over the slot
environment, and this module discharges them *statically*, by abstract
interpretation of the op program:

* every slot is proven written-before-read under **every** gate/clock
  configuration -- gate regions are analysed as *may-skip*, so a slot
  assigned only inside a gated region is at best *maybe-written* after the
  join (``ir-read-before-write`` / ``ir-never-written``);
* reads that may observe an absent slot because a gate skipped its writer
  are collected as the codegen proof obligation "these slots must be
  ABSENT-initialized" (``ir-may-skip-read``, one aggregated info finding
  -- absence is *legal* in this semantics, the obligation is on code
  generators, not on models);
* dead stores (``ir-dead-store``), same-tick write-write conflicts
  (``ir-write-write``), malformed gate jumps (``ir-gate-structure``) and
  gate regions whose clock provably never fires (``ir-unreachable-op``);
* correction barriers: every scratch-tracked run op must be covered by a
  matching barrier entry and vice versa, and untracked non-feedthrough
  leaves must not have late producers writing their inputs
  (``ir-correction-unmatched`` / ``ir-correction-missing`` /
  ``ir-correction-dead``);
* batch aliasing: :func:`certify_batch` certifies a schedule safe for the
  ``(slot, scenario)`` vectorized sweeps of the batch backend -- fused
  copy ops are classified gatherable vs order-dependent (chains and
  different-source duplicate destinations require in-order pair
  execution), and genuine aliasing hazards void the certification
  (``ir-batch-alias`` / ``ir-batch-certified``).

The verifier never executes a tick and never calls a step closure; it
reads only the program tuples, the specs and the leaves' static metadata.
Compiler-produced schedules are expected to verify clean (the mutation
self-tests in ``tests/test_lint_ir.py`` doctor programs to prove each rule
actually fires).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ...core.clocks import EventClock
from ...core.validation import Severity
from ...simulation.schedule_ir import (OP_BUF_READ, OP_BUF_WRITE, OP_COPY,
                                       OP_CORRECT, OP_EXPR, OP_GATE, OP_RUN,
                                       FlatSchedule)
from .findings import Finding, LintReport
from .registry import get_rule

# Abstract slot states of the dataflow lattice.
_UNWRITTEN, _MAYBE, _WRITTEN = 0, 1, 2


def _finding(rule_id: str, message: str, element: str = "",
             suggestion: str = "",
             severity: Optional[Severity] = None,
             **location: Any) -> Finding:
    rule = get_rule(rule_id)
    if severity is None:
        severity = rule.default_severity if rule else Severity.WARNING
    return Finding(rule=rule_id, severity=severity, message=message,
                   element=element, suggestion=suggestion,
                   location={k: v for k, v in location.items()
                             if v is not None})


def _op_events(op: Tuple[Any, ...],
               index: int = 0) -> List[Tuple[str, int, Any]]:
    """The ordered slot events of one op: ``(kind, slot, origin)``.

    Mirrors the execution order of ``FlatSchedule._make_step`` exactly:
    run/expr ops read their input spec, write their outputs, then run
    their post-propagation copies pair by pair; copy ops interleave reads
    and writes pair by pair (fused chains are order-dependent).

    Write events carry an *origin*: ``("new", token)`` for a freshly
    computed value, ``("copy", src)`` for a forwarded one.  The dataflow
    pass resolves copy origins transitively -- the flattener routinely
    forwards one produced value to the same slot twice (post-propagation
    pairs plus boundary copies), which is redundant, not a conflict, and
    must not trip ``ir-write-write``.
    """
    code = op[0]
    events: List[Tuple[str, int, Any]] = []
    if code == OP_RUN:
        _, _leaf, _fn, in_spec, out_spec, post, _si = op
        # a correction-tracked run reads provisional (possibly still
        # absent) inputs by design: the barrier re-runs it with the final
        # values, so these reads are exempt from write-before-read ("cr")
        read_kind = "cr" if _si >= 0 else "r"
        events.extend((read_kind, slot, None) for _name, slot in in_spec)
        events.extend(("w", slot, ("new", (index, name)))
                      for name, slot in out_spec)
        for src, dst in post:
            events.append(("r", src, None))
            events.append(("w", dst, ("copy", src)))
    elif code == OP_EXPR:
        _, _leaf, in_spec, items, post = op
        events.extend(("r", slot, None) for _name, slot in in_spec)
        events.extend(("w", slot, ("new", (index, slot)))
                      for slot, _fn in items if slot >= 0)
        for src, dst in post:
            events.append(("r", src, None))
            events.append(("w", dst, ("copy", src)))
    elif code == OP_COPY:
        for src, dst in op[1]:
            events.append(("r", src, None))
            events.append(("w", dst, ("copy", src)))
    elif code == OP_BUF_READ:
        events.extend(("w", dst, ("new", (index, "buf", buf)))
                      for buf, dst in op[1])
    elif code == OP_BUF_WRITE:
        events.extend(("r", src, None) for src, _index in op[1])
    elif code == OP_CORRECT:
        for _si, _leaf, _fn, in_spec in op[1]:
            events.extend(("r", slot, None) for _name, slot in in_spec)
    return events


def _gate_clock(predicate: Any) -> Any:
    """Recover the abstract clock behind a gate predicate, if possible.

    Compiler-produced gates store ``PatternCache.at`` bound methods, whose
    ``__self__.clock`` is the original :class:`~repro.core.clocks.Clock`.
    Hand-built predicates return ``None`` (no reachability claims made).
    """
    cache = getattr(predicate, "__self__", None)
    return getattr(cache, "clock", None)


def _clock_never_fires(clock: Any) -> bool:
    """True only when the gate clock *provably* never fires.

    Decidable cases: an empty :class:`EventClock` (no ticks at all) and a
    periodic clock with no present tick across two hyperperiods (defensive
    -- current periodic clock classes always fire).  Data-dependent
    predicates are never flagged.
    """
    if clock is None:
        return False
    if isinstance(clock, EventClock):
        return not clock.ticks
    if clock.is_periodic() and clock.period:
        horizon = clock.phase + 2 * clock.period
        return not any(clock.at(tick) for tick in range(horizon))
    return False


def _slot_name(schedule: FlatSchedule, slot: int) -> str:
    names = schedule.slot_names
    if 0 <= slot < len(names):
        return names[slot]
    return f"slot#{slot}"


def lint_flat_schedule(schedule: FlatSchedule,
                       subject: Optional[str] = None) -> LintReport:
    """Run every IR dataflow rule over *schedule* and report findings."""
    report = LintReport(subject or
                        f"flat schedule of {schedule.component.name!r}")
    program = schedule.program
    n_ops = len(program)
    input_slots = {slot for _name, slot in schedule.input_spec}
    output_slots = [slot for _name, slot in schedule.output_spec]

    # -- global write/read maps (gates ignored: may-execute) ---------------
    writes_by_slot: Dict[int, List[int]] = {}
    reads_by_slot: Dict[int, List[int]] = {}
    for index, op in enumerate(program):
        for kind, slot, _origin in _op_events(op, index):
            target = writes_by_slot if kind == "w" else reads_by_slot
            target.setdefault(slot, []).append(index)  # "r" and "cr" read
    for slot in output_slots:
        reads_by_slot.setdefault(slot, []).append(n_ops)

    # -- gate structure + unreachable regions ------------------------------
    # region_stack entries: (join target, snapshot of slot states)
    bad_gates: Set[int] = set()
    for index, op in enumerate(program):
        if op[0] != OP_GATE:
            continue
        target = op[2]
        if not index < target <= n_ops:
            bad_gates.add(index)
            report.add(_finding(
                "ir-gate-structure",
                f"gate at op {index} jumps to {target}, outside the legal "
                f"range ({index + 1}..{n_ops})",
                element=f"op {index}", op=index, target=target))
            continue
        clock = _gate_clock(op[1])
        if _clock_never_fires(clock):
            report.add(_finding(
                "ir-unreachable-op",
                f"ops {index + 1}..{target - 1} are unreachable: gate "
                f"clock {clock.expression()} never fires",
                element=f"op {index}",
                suggestion="remove the gated subtree or give its clock "
                           "at least one present tick",
                op=index, region=[index + 1, target - 1]))

    # -- abstract interpretation of the slot environment -------------------
    states = [_UNWRITTEN] * schedule.n_slots
    #: provenance of each slot's current value; distinct origins in a
    #: same-tick overwrite are a conflict, equal ones redundant forwarding
    origins: List[Any] = [None] * schedule.n_slots
    for name, slot in schedule.input_spec:
        states[slot] = _WRITTEN
        origins[slot] = ("input", name)
    read_since_write = [True] * schedule.n_slots
    last_write_op = [-1] * schedule.n_slots
    region_stack: List[Tuple[int, List[int], List[Any]]] = []

    read_before_write: Dict[int, int] = {}   # slot -> first offending op
    never_written: Dict[int, int] = {}
    maybe_absent: Dict[int, int] = {}
    write_write: Dict[int, Tuple[int, int]] = {}  # slot -> (op, earlier op)

    def join_regions(index: int) -> None:
        while region_stack and region_stack[-1][0] == index:
            _target, snapshot, origin_snapshot = region_stack.pop()
            for slot in range(schedule.n_slots):
                if states[slot] != snapshot[slot]:
                    states[slot] = _MAYBE
                    origins[slot] = ("join", index, slot)
                elif origins[slot] != origin_snapshot[slot]:
                    origins[slot] = ("join", index, slot)

    for index in range(n_ops):
        join_regions(index)
        op = program[index]
        if op[0] == OP_GATE:
            if index not in bad_gates:
                region_stack.append((op[2], states[:], origins[:]))
            continue
        for kind, slot, origin in _op_events(op, index):
            if kind in ("r", "cr"):
                state = states[slot]
                if kind == "r" and state == _UNWRITTEN:
                    if writes_by_slot.get(slot):
                        read_before_write.setdefault(slot, index)
                    else:
                        never_written.setdefault(slot, index)
                elif kind == "r" and state == _MAYBE:
                    maybe_absent.setdefault(slot, index)
                read_since_write[slot] = True
            else:
                if origin[0] == "copy":
                    src = origin[1]
                    origin = origins[src] if origins[src] is not None \
                        else ("slot", src)
                if states[slot] == _WRITTEN \
                        and not read_since_write[slot] \
                        and origin != origins[slot]:
                    write_write.setdefault(slot,
                                           (index, last_write_op[slot]))
                states[slot] = _WRITTEN
                origins[slot] = origin
                read_since_write[slot] = False
                last_write_op[slot] = index
    join_regions(n_ops)
    for slot in output_slots:
        if states[slot] == _UNWRITTEN and not writes_by_slot.get(slot) \
                and slot not in input_slots:
            never_written.setdefault(slot, n_ops)

    for slot, index in sorted(read_before_write.items()):
        report.add(_finding(
            "ir-read-before-write",
            f"op {index} reads slot {slot} ({_slot_name(schedule, slot)}) "
            f"before its first writer, op {min(writes_by_slot[slot])}, "
            f"has run",
            element=_slot_name(schedule, slot),
            suggestion="the program is not topologically ordered; "
                       "recompile the schedule",
            op=index, slot=slot, first_writer=min(writes_by_slot[slot])))
    for slot, index in sorted(never_written.items()):
        where = ("the boundary output spec" if index == n_ops
                 else f"op {index}")
        report.add(_finding(
            "ir-never-written",
            f"{where} reads slot {slot} ({_slot_name(schedule, slot)}) "
            f"which no op and no boundary input ever writes: the value is "
            f"always absent",
            element=_slot_name(schedule, slot),
            suggestion="connect the port or drop it from the model",
            op=None if index == n_ops else index, slot=slot))
    for slot, (index, earlier) in sorted(write_write.items()):
        report.add(_finding(
            "ir-write-write",
            f"op {index} overwrites slot {slot} "
            f"({_slot_name(schedule, slot)}) already written by op "
            f"{earlier} in the same tick with no read in between",
            element=_slot_name(schedule, slot), op=index, slot=slot,
            earlier_writer=earlier))
    if maybe_absent:
        sample = [(_slot_name(schedule, slot), slot)
                  for slot in sorted(maybe_absent)[:8]]
        report.add(_finding(
            "ir-may-skip-read",
            f"{len(maybe_absent)} slot(s) are read after a gate region "
            f"that may skip their writer; generated code must initialize "
            f"every slot to ABSENT each tick "
            f"(e.g. {', '.join(name for name, _ in sample)})",
            element=report.subject,
            slots=sorted(maybe_absent), sample=sample))

    # -- dead stores (slot granularity, may-read over-approximated) --------
    for slot in sorted(writes_by_slot):
        if not reads_by_slot.get(slot):
            report.add(_finding(
                "ir-dead-store",
                f"slot {slot} ({_slot_name(schedule, slot)}) is written by "
                f"op(s) {writes_by_slot[slot]} but never read: the computed "
                f"value is unused",
                element=_slot_name(schedule, slot),
                slot=slot, writers=writes_by_slot[slot]))

    # -- correction barriers -----------------------------------------------
    report.extend(_check_corrections(schedule, writes_by_slot))

    # -- batch aliasing certification --------------------------------------
    cert = certify_batch(schedule)
    report.extend(cert.pop("findings"))
    if cert["safe"]:
        report.add(_finding(
            "ir-batch-certified",
            f"certified safe for (slot, scenario) vectorized sweeps: "
            f"{cert['copy_ops']} copy op(s), {cert['gatherable_ops']} "
            f"gatherable, {cert['order_dependent_ops']} order-dependent "
            f"(in-order pair execution required), 0 aliasing hazards",
            element=report.subject, **{k: v for k, v in cert.items()}))
    return report


def _check_corrections(schedule: FlatSchedule,
                       writes_by_slot: Dict[int, List[int]]) -> List[Finding]:
    """Verify correction-barrier coverage against the late-producer sets."""
    findings: List[Finding] = []
    program = schedule.program
    tracked: Dict[int, Tuple[int, int, Tuple[Tuple[str, int], ...]]] = {}
    covered: Set[int] = set()

    for index, op in enumerate(program):
        if op[0] == OP_RUN and op[6] >= 0:
            tracked[op[6]] = (index, op[1], op[3])

    def leaf_label(leaf_index: int) -> str:
        leaf = schedule.leaves[leaf_index]
        return f"{leaf.steps_prefix}/{leaf.component.name}"

    for index, op in enumerate(program):
        if op[0] != OP_CORRECT:
            continue
        for si, leaf_index, _fn, in_spec in op[1]:
            run = tracked.get(si)
            if run is None or run[0] > index or run[1] != leaf_index \
                    or run[2] != in_spec:
                reason = ("no run op tracks scratch slot "
                          f"{si}" if run is None else
                          "the tracked run op runs after the barrier"
                          if run[0] > index else
                          "the tracked run op is a different leaf"
                          if run[1] != leaf_index else
                          "the barrier re-reads a different input spec "
                          "than the run op consumed")
                findings.append(_finding(
                    "ir-correction-unmatched",
                    f"correction entry for leaf "
                    f"{leaf_label(leaf_index)} at op {index}: {reason}",
                    element=leaf_label(leaf_index),
                    op=index, scratch=si))
                continue
            covered.add(si)
            run_index = run[0]
            live = any(any(run_index < w < index
                           for w in writes_by_slot.get(slot, ()))
                       for _name, slot in in_spec)
            if not live:
                findings.append(_finding(
                    "ir-correction-dead",
                    f"correction entry for leaf {leaf_label(leaf_index)} "
                    f"at op {index} is vacuous: no op between the run "
                    f"(op {run_index}) and the barrier writes any of its "
                    f"input slots",
                    element=leaf_label(leaf_index),
                    op=index, scratch=si, run=run_index))

    for si, (run_index, leaf_index, _in_spec) in sorted(tracked.items()):
        if si not in covered:
            findings.append(_finding(
                "ir-correction-missing",
                f"run op {run_index} (leaf {leaf_label(leaf_index)}) "
                f"tracks scratch slot {si} but no correction barrier "
                f"covers it: late input changes are silently dropped",
                element=leaf_label(leaf_index),
                op=run_index, scratch=si))

    # untracked non-feedthrough leaves with late producers
    for index, op in enumerate(program):
        if op[0] != OP_RUN or op[6] >= 0:
            continue
        leaf = schedule.leaves[op[1]]
        deps = leaf.component.instantaneous_dependencies()
        if any(deps.values()):
            continue  # feedthrough leaves re-read nothing from tick-start
        late = sorted({w for _name, slot in op[3]
                       for w in writes_by_slot.get(slot, ()) if w > index})
        if late:
            findings.append(_finding(
                "ir-correction-missing",
                f"non-feedthrough leaf {leaf_label(op[1])} (run op {index}) "
                f"has late producers (op(s) {late}) writing its input "
                f"slots but is not correction-tracked: its state update "
                f"saw stale inputs",
                element=leaf_label(op[1]),
                op=index, late_writers=late))
    return findings


def certify_batch(schedule: FlatSchedule) -> Dict[str, Any]:
    """Certify *schedule* for ``(slot, scenario)`` vectorized batch sweeps.

    The batch backend executes copy pairs in order, row-assigning one slot
    across all scenario lanes at a time; a copy op is *gatherable* (safe to
    lower as one fancy-indexed gather, or to reorder/parallelize) iff its
    pairs are alias-free.  The flattener's copy fusion routinely produces
    chains (a pair reading an earlier pair's destination) and redundant
    duplicates (the same value forwarded to one slot twice) -- both are
    correct under in-order execution and only classify the op as
    *order-dependent*; a destination written twice from **different**
    sources is additionally reported (``ir-batch-alias``, info).  The only
    hazard that voids the certification is a self-copy pair whose slot an
    earlier pair already rewrote -- under any reordering or two-phase
    gather its value is ambiguous.

    Returns ``{"safe", "copy_ops", "gatherable_ops", "order_dependent_ops",
    "hazards", "findings"}``.
    """
    findings: List[Finding] = []
    copy_ops = gatherable = order_dependent = hazards = 0

    def classify(index: int, pairs: Tuple[Tuple[int, int], ...],
                 what: str) -> bool:
        nonlocal hazards
        ordered = False
        dst_sources: Dict[int, int] = {}
        rewritten: Set[int] = set()
        for pair_index, (src, dst) in enumerate(pairs):
            if src == dst and src in rewritten:
                hazards += 1
                findings.append(_finding(
                    "ir-batch-alias",
                    f"{what} {index} pair {pair_index} copies slot {src} "
                    f"({_slot_name(schedule, src)}) onto itself after an "
                    f"earlier pair rewrote it: ambiguous under any "
                    f"reordering or two-phase gather",
                    element=_slot_name(schedule, src),
                    op=index, pair=pair_index, slot=src))
            if dst in dst_sources:
                ordered = True
                if dst_sources[dst] != src:
                    findings.append(_finding(
                        "ir-batch-alias",
                        f"{what} {index} writes slot {dst} "
                        f"({_slot_name(schedule, dst)}) from two different "
                        f"sources; the last pair wins, so the op requires "
                        f"in-order pair execution and cannot be lowered "
                        f"as a parallel gather",
                        element=_slot_name(schedule, dst),
                        severity=Severity.INFO, op=index, slot=dst))
            dst_sources[dst] = src
            rewritten.add(dst)
            if any(src == earlier_dst
                   for _esrc, earlier_dst in pairs[:pair_index]):
                ordered = True
        return ordered

    for index, op in enumerate(schedule.program):
        if op[0] == OP_COPY:
            copy_ops += 1
            if classify(index, op[1], "copy op"):
                order_dependent += 1
            else:
                gatherable += 1
        elif op[0] in (OP_RUN, OP_EXPR):
            post = op[5] if op[0] == OP_RUN else op[4]
            if post:
                classify(index, tuple(post), "post-propagation of op")
    return {"safe": hazards == 0, "copy_ops": copy_ops,
            "gatherable_ops": gatherable,
            "order_dependent_ops": order_dependent,
            "hazards": hazards, "findings": findings}
