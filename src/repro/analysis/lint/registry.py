"""The rule registry: every static-analysis rule id, in one place.

Rule ids are **stable identifiers**: they appear in JSON exports, SARIF
logs, CI gates and user suppressions, so they are registered centrally
with a layer, a default severity and a one-line summary.  Adding a rule
means registering it here; reusing an id raises.

Layers:

* ``ir``      -- dataflow verification over :class:`FlatSchedule` programs
* ``expr``    -- abstract interpretation of base-language expressions
* ``machine`` -- MTD/STD machine-level checks
* ``model``   -- hierarchy/model-level analyses (causality, conflicts,
  rate transitions, cross-level consistency, notation well-formedness)

The ``model`` layer includes the *legacy* ids that predate this engine
(``causality``, ``ccd-rate-transition``, ``faa-actuator-conflict``...);
registering them here is what makes
:func:`~repro.analysis.lint.findings.findings_from_report` a lossless
adoption path with full SARIF rule metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...core.errors import ValidationError
from ...core.validation import Severity


@dataclass(frozen=True)
class LintRule:
    """Metadata of one registered rule."""

    rule_id: str
    layer: str
    default_severity: Severity
    summary: str


_RULES: Dict[str, LintRule] = {}

_LAYERS = ("ir", "expr", "machine", "model")


def register(rule_id: str, layer: str, default_severity: Severity,
             summary: str) -> LintRule:
    """Register a rule id; duplicate ids and unknown layers raise."""
    if layer not in _LAYERS:
        raise ValidationError(f"unknown lint layer {layer!r} for rule "
                              f"{rule_id!r} (expected one of {_LAYERS})")
    if rule_id in _RULES:
        raise ValidationError(f"lint rule {rule_id!r} is already registered")
    rule = LintRule(rule_id, layer, default_severity, summary)
    _RULES[rule_id] = rule
    return rule


def get_rule(rule_id: str) -> Optional[LintRule]:
    return _RULES.get(rule_id)


def all_rules(layer: Optional[str] = None) -> List[LintRule]:
    rules = sorted(_RULES.values(), key=lambda rule: rule.rule_id)
    if layer is None:
        return rules
    return [rule for rule in rules if rule.layer == layer]


def rule_ids(layer: Optional[str] = None) -> List[str]:
    return [rule.rule_id for rule in all_rules(layer)]


# --------------------------------------------------------------------------
# IR dataflow verification (repro.analysis.lint.ir_verify)
# --------------------------------------------------------------------------

register("ir-read-before-write", "ir", Severity.ERROR,
         "an op reads a slot before the op that writes it has run")
register("ir-never-written", "ir", Severity.WARNING,
         "an op reads a slot no op and no boundary input ever writes")
register("ir-may-skip-read", "ir", Severity.INFO,
         "reads that may observe an absent slot when a gate clock is "
         "silent (the codegen ABSENT-initialization obligation)")
register("ir-dead-store", "ir", Severity.INFO,
         "a slot is written but never read afterwards")
register("ir-write-write", "ir", Severity.WARNING,
         "a slot is written twice in one tick with no intervening read")
register("ir-gate-structure", "ir", Severity.ERROR,
         "a gate op has a malformed jump target")
register("ir-unreachable-op", "ir", Severity.WARNING,
         "ops inside a gate region whose clock provably never fires")
register("ir-correction-unmatched", "ir", Severity.ERROR,
         "a correction-barrier entry does not match the tracked run op "
         "(scratch index, leaf or input spec)")
register("ir-correction-missing", "ir", Severity.ERROR,
         "a non-feedthrough leaf can see stale inputs but is not covered "
         "by any correction barrier")
register("ir-correction-dead", "ir", Severity.INFO,
         "a correction-barrier entry whose inputs no later op can change "
         "(the compare-and-rerun is provably a no-op)")
register("ir-batch-alias", "ir", Severity.WARNING,
         "a fused copy op has aliasing pairs (duplicate destination or "
         "self-copy) unsafe to reorder for vectorized sweeps")
register("ir-batch-certified", "ir", Severity.INFO,
         "the schedule is certified safe for (slot, scenario) vectorized "
         "batch sweeps")

# --------------------------------------------------------------------------
# Expression abstract interpretation (repro.analysis.lint.expr_check)
# --------------------------------------------------------------------------

register("expr-unknown-name", "expr", Severity.ERROR,
         "an expression reads a name that is not bound in its context")
register("expr-unknown-function", "expr", Severity.ERROR,
         "an expression calls a function the evaluator does not define")
register("expr-div-by-zero", "expr", Severity.WARNING,
         "a division whose divisor may be zero (error when provably zero)")
register("expr-type-mismatch", "expr", Severity.WARNING,
         "an operator applied to operands of incompatible abstract types")
register("expr-output-type", "expr", Severity.WARNING,
         "an output expression's inferred type is incompatible with the "
         "declared port type")
register("expr-undeclared-output", "expr", Severity.WARNING,
         "an expression component defines an expression for a port it "
         "does not declare")
register("expr-constant-guard", "expr", Severity.WARNING,
         "a transition guard is constant (dead transition or "
         "unconditionally shadowing one)")

# --------------------------------------------------------------------------
# Machine-level checks (repro.analysis.lint.machine_check)
# --------------------------------------------------------------------------

register("machine-unreachable", "machine", Severity.WARNING,
         "an MTD mode / STD state is unreachable from the initial one")
register("machine-guard-overlap", "machine", Severity.WARNING,
         "two same-priority transitions from one state are simultaneously "
         "satisfiable with different targets (resolved only by insertion "
         "order)")

# --------------------------------------------------------------------------
# Model-level analyses, including legacy rule ids adopted via
# findings_from_report (ids preserved verbatim for stability).
# --------------------------------------------------------------------------

register("causality", "model", Severity.ERROR,
         "instantaneous-loop (causality) analysis of every composite")
register("ccd-rate-transition", "model", Severity.WARNING,
         "LA/CCD rate transitions need delays under the target profile")
register("faa-actuator-conflict", "model", Severity.WARNING,
         "multiple FAA functions drive one actuator without a coordinator")
register("faa-shared-sensor", "model", Severity.INFO,
         "an FAA sensor is shared by several functions")
register("faa-fda-coverage", "model", Severity.ERROR,
         "every FAA function must be realized by some FDA component")
register("fda-la-allocation", "model", Severity.ERROR,
         "every FDA component must be allocated to exactly one cluster")
register("interface-refinement", "model", Severity.ERROR,
         "refined components must preserve the abstract interface")
register("la-ta-deployment", "model", Severity.ERROR,
         "every cluster must be deployed to exactly one ECU")
