"""``python -m repro.analysis.lint`` -- lint models from the command line.

Lints the built-in case-study models and/or example files and reports
through the unified finding schema::

    python -m repro.analysis.lint --all
    python -m repro.analysis.lint engine-ccd momentum --json out.json
    python -m repro.analysis.lint --all --sarif lint.sarif
    python -m repro.analysis.lint --example examples/quickstart.py
    python -m repro.analysis.lint --list-rules

An example file is any python module defining zero-argument ``build_*``
functions returning components; every such builder is linted.  The exit
code is 1 when any finding of severity ERROR was produced (warnings and
infos do not fail the run), which is what the CI ``lint-models`` job
gates on.
"""

from __future__ import annotations

import argparse
import importlib.util
import inspect
import json
import os
import sys
from typing import Any, Callable, Dict, List, Tuple

from ...core.components import Component
from ...notations.ccd import ClusterCommunicationDiagram
from .engine import lint_model, lint_well_definedness
from .findings import FINDING_SCHEMA_VERSION, LintReport, to_sarif
from .registry import all_rules


def _builtin_targets() -> Dict[str, Callable[[], Component]]:
    from ...casestudy.door_lock import (build_comfort_closing,
                                        build_door_lock_control,
                                        build_door_lock_faa)
    from ...casestudy.engine_control import (build_crank_sequencer_std,
                                             build_engine_ccd,
                                             build_engine_modes_mtd)
    from ...casestudy.momentum import (build_closed_loop,
                                       build_momentum_controller)
    from ...casestudy.reengineered import build_reengineered_fda
    return {
        "door-lock-control": build_door_lock_control,
        "comfort-closing": build_comfort_closing,
        "door-lock-faa": build_door_lock_faa,
        "engine-modes": build_engine_modes_mtd,
        "crank-sequencer": build_crank_sequencer_std,
        "engine-ccd": build_engine_ccd,
        "momentum": build_momentum_controller,
        "closed-loop": build_closed_loop,
        "reengineered-fda": build_reengineered_fda,
    }


def _example_builders(path: str) -> List[Tuple[str, Callable[[], Any]]]:
    """Zero-argument ``build_*`` functions defined by an example file."""
    name = "repro_lint_example_" + path.replace("/", "_").replace(".", "_")
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot load example module {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    builders: List[Tuple[str, Callable[[], Any]]] = []
    for attr_name, attr in sorted(vars(module).items()):
        if not attr_name.startswith("build_") or not callable(attr):
            continue
        try:
            signature = inspect.signature(attr)
        except (TypeError, ValueError):
            continue
        if all(p.default is not inspect.Parameter.empty
               or p.kind in (inspect.Parameter.VAR_POSITIONAL,
                             inspect.Parameter.VAR_KEYWORD)
               for p in signature.parameters.values()):
            builders.append((f"{path}:{attr_name}", attr))
    return builders


def _lint_target(label: str, builder: Callable[[], Any],
                 well_definedness: bool = False) -> LintReport:
    model = builder()
    if not isinstance(model, Component):
        return LintReport(label)
    report = lint_model(model)
    report.subject = label
    for finding in report.findings:
        finding.subject = label
    if well_definedness and isinstance(model, ClusterCommunicationDiagram):
        # opt-in: case-study CCDs deliberately ship repairable rate
        # transitions, so target-profile conditions are not part of the
        # default gate
        extra = lint_well_definedness(model)
        for finding in extra.findings:
            finding.subject = label
        report.merge(extra)
    return report


def _makedirs_for(path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="statically verify models: IR dataflow, expression "
                    "abstract interpretation, machine-level checks")
    parser.add_argument("targets", nargs="*",
                        help="built-in model names (see --list-targets)")
    parser.add_argument("--all", action="store_true",
                        help="lint every built-in case-study model")
    parser.add_argument("--example", action="append", default=[],
                        metavar="FILE",
                        help="lint the build_* functions of an example "
                             "file (repeatable)")
    parser.add_argument("--json", metavar="FILE",
                        help="write all reports as JSON")
    parser.add_argument("--sarif", metavar="FILE",
                        help="write all reports as a SARIF 2.1.0 log")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every registered rule id and exit")
    parser.add_argument("--list-targets", action="store_true",
                        help="list the built-in model names and exit")
    parser.add_argument("--well-definedness", action="store_true",
                        help="also check CCD targets against the OSEK "
                             "well-definedness profile (off by default: "
                             "case-study CCDs deliberately ship repairable "
                             "rate transitions)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="print only the per-subject summaries")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:26s} {rule.layer:8s} "
                  f"{rule.default_severity!s:8s} {rule.summary}")
        return 0

    builtins = _builtin_targets()
    if args.list_targets:
        for name in sorted(builtins):
            print(name)
        return 0

    selected: List[Tuple[str, Callable[[], Any]]] = []
    if args.all or (not args.targets and not args.example):
        selected.extend(sorted(builtins.items()))
    for target in args.targets:
        if target not in builtins:
            parser.error(f"unknown target {target!r} "
                         f"(known: {', '.join(sorted(builtins))})")
        selected.append((target, builtins[target]))
    for example in args.example:
        selected.extend(_example_builders(example))

    reports = [_lint_target(label, builder,
                            well_definedness=args.well_definedness)
               for label, builder in selected]

    for report in reports:
        if args.quiet:
            print(report.summary())
        else:
            print(report.describe())

    if args.json:
        payload = {"schema_version": FINDING_SCHEMA_VERSION,
                   "reports": [report.to_json_dict() for report in reports]}
        _makedirs_for(args.json)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True,
                      default=repr)
            handle.write("\n")
    if args.sarif:
        _makedirs_for(args.sarif)
        with open(args.sarif, "w", encoding="utf-8") as handle:
            json.dump(to_sarif(reports), handle, indent=2, default=repr)
            handle.write("\n")

    error_count = sum(len(report.errors()) for report in reports)
    if error_count:
        print(f"FAILED: {error_count} error finding(s) across "
              f"{len(reports)} subject(s)", file=sys.stderr)
        return 1
    print(f"ok: {len(reports)} subject(s), 0 errors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
