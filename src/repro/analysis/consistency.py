"""Cross-level consistency checks (paper Sec. 1 and 3).

"Notations and underlying models have to be well-integrated to ensure
consistency between different abstractions which is crucial for a design
process typically spanning several companies."  Because all views in this
reproduction are built over one metamodel, many consistency properties hold
by construction; the checks here verify the properties that refinement steps
could still break:

* every FAA functionality is covered by at least one FDA component
  (traced through the ``realizes`` annotation),
* every FDA component is allocated to exactly one LA cluster,
* cluster interfaces preserve the types of the FDA signals they expose
  (modulo implementation-type refinement),
* every LA cluster is deployed to exactly one task of the TA.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.components import Component, CompositeComponent
from ..core.impl_types import ImplementationType
from ..core.types import Type, is_assignable
from ..core.validation import ValidationReport
from ..notations.ccd import Cluster, ClusterCommunicationDiagram

REALIZES_ANNOTATION = "realizes"
ALLOCATED_TO_ANNOTATION = "allocated_to"


def check_faa_fda_coverage(faa: CompositeComponent,
                           fda: CompositeComponent) -> ValidationReport:
    """Every FAA functionality must be realized by some FDA component."""
    report = ValidationReport(
        f"FAA/FDA coverage: {faa.name!r} vs {fda.name!r}")
    realized: Set[str] = set()
    for component in fda.subcomponents():
        value = component.annotations.get(REALIZES_ANNOTATION, ())
        if isinstance(value, str):
            realized.add(value)
        else:
            realized.update(value)
    for functionality in faa.subcomponents():
        if functionality.annotations.get("role") in ("sensor", "actuator"):
            continue
        if functionality.name in realized:
            report.info("faa-fda-coverage",
                        f"functionality {functionality.name!r} is realized",
                        element=functionality.name)
        else:
            report.error("faa-fda-coverage",
                         f"functionality {functionality.name!r} has no "
                         "realizing FDA component",
                         element=functionality.name,
                         suggestion="annotate the realizing FDA component "
                                    f"with realizes={functionality.name!r}")
    return report


def check_fda_la_allocation(fda: CompositeComponent,
                            ccd: ClusterCommunicationDiagram) -> ValidationReport:
    """Every FDA component must be grouped into exactly one LA cluster."""
    report = ValidationReport(
        f"FDA/LA allocation: {fda.name!r} vs {ccd.name!r}")
    allocation: Dict[str, List[str]] = {}
    for cluster in ccd.clusters():
        members = cluster.annotations.get("members", [])
        if isinstance(members, str):
            members = [members]
        for member in members:
            allocation.setdefault(member, []).append(cluster.name)
        for sub in cluster.subcomponents():
            allocation.setdefault(sub.name, []).append(cluster.name)
    for component in fda.subcomponents():
        clusters = sorted(set(allocation.get(component.name, [])))
        if not clusters:
            report.error("fda-la-allocation",
                         f"FDA component {component.name!r} is not allocated "
                         "to any cluster",
                         element=component.name)
        elif len(clusters) > 1:
            report.error("fda-la-allocation",
                         f"FDA component {component.name!r} is allocated to "
                         f"several clusters: {', '.join(clusters)} (a cluster "
                         "is the smallest deployable unit)",
                         element=component.name)
        else:
            report.info("fda-la-allocation",
                        f"{component.name!r} -> cluster {clusters[0]!r}",
                        element=component.name)
    return report


def check_interface_refinement(abstract: Component,
                               concrete: Component) -> ValidationReport:
    """Port-wise type compatibility between an FDA component and its cluster.

    A concrete (LA) port may carry an implementation type; the check then
    only requires the port to exist with the same direction.  For abstract
    types the usual assignability must hold.
    """
    report = ValidationReport(
        f"interface refinement: {abstract.name!r} -> {concrete.name!r}")
    for port in abstract.ports():
        if not concrete.has_port(port.name):
            report.error("interface-refinement",
                         f"port {port.name!r} of {abstract.name!r} is missing "
                         f"on {concrete.name!r}",
                         element=port.name)
            continue
        concrete_port = concrete.port(port.name)
        if concrete_port.direction is not port.direction:
            report.error("interface-refinement",
                         f"port {port.name!r} changed direction during "
                         "refinement",
                         element=port.name)
            continue
        if isinstance(concrete_port.port_type, ImplementationType):
            report.info("interface-refinement",
                        f"port {port.name!r}: {port.port_type!r} refined to "
                        f"{concrete_port.port_type.name}",
                        element=port.name)
        elif not is_assignable(port.port_type, concrete_port.port_type):
            report.error("interface-refinement",
                         f"port {port.name!r}: {port.port_type!r} is not "
                         f"assignable to {concrete_port.port_type!r}",
                         element=port.name)
    return report


def check_la_ta_deployment(ccd: ClusterCommunicationDiagram,
                           task_of_cluster: Dict[str, str]) -> ValidationReport:
    """Every cluster must be mapped to exactly one task (clusters never split)."""
    report = ValidationReport(f"LA/TA deployment of {ccd.name!r}")
    for cluster in ccd.clusters():
        task = task_of_cluster.get(cluster.name)
        if task is None:
            report.error("la-ta-deployment",
                         f"cluster {cluster.name!r} is not deployed to any task",
                         element=cluster.name)
        else:
            report.info("la-ta-deployment",
                        f"cluster {cluster.name!r} -> task {task!r}",
                        element=cluster.name)
    return report
