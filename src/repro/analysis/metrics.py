"""Model complexity metrics used by the reengineering case study (Sec. 5).

The case study argues qualitatively: implicit modes buried in If-Then-Else
control flow and in a "large number of flags" make the original ASCET model
hard to understand, whereas MTDs make the orthogonal modes explicit.  To turn
this into a reproducible comparison, this module measures models:

* structural size (components, blocks, channels, hierarchy depth),
* control-flow complexity (number of If-Then-Else operators in expressions),
* mode explicitness (number of MTD/STD modes/states, number of mode ports),
* flag count (boolean outputs of components, the "flag explosion" symptom).

The same metrics work on AutoMoDe components and (via duck typing on the
relevant collections) on the ASCET substrate's modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.components import (Component, CompositeComponent,
                               ExpressionComponent)
from ..core.expressions import conditional_count, operator_count
from ..core.types import BoolType
from ..notations.mtd import ModeTransitionDiagram
from ..notations.std import StateTransitionDiagram


@dataclass
class ModelMetrics:
    """Collected size/complexity numbers for one model."""

    name: str
    components: int = 0
    atomic_blocks: int = 0
    composite_components: int = 0
    channels: int = 0
    delayed_channels: int = 0
    ports: int = 0
    boolean_outputs: int = 0
    hierarchy_depth: int = 0
    expression_operators: int = 0
    if_then_else_operators: int = 0
    explicit_modes: int = 0
    mode_transitions: int = 0
    mtd_count: int = 0
    std_states: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        result = {
            "name": self.name,
            "components": self.components,
            "atomic_blocks": self.atomic_blocks,
            "composite_components": self.composite_components,
            "channels": self.channels,
            "delayed_channels": self.delayed_channels,
            "ports": self.ports,
            "boolean_outputs": self.boolean_outputs,
            "hierarchy_depth": self.hierarchy_depth,
            "expression_operators": self.expression_operators,
            "if_then_else_operators": self.if_then_else_operators,
            "explicit_modes": self.explicit_modes,
            "mode_transitions": self.mode_transitions,
            "mtd_count": self.mtd_count,
            "std_states": self.std_states,
        }
        result.update(self.extra)
        return result

    def describe(self) -> str:
        lines = [f"metrics for {self.name!r}:"]
        for key, value in self.as_dict().items():
            if key == "name":
                continue
            lines.append(f"  {key.replace('_', ' ')}: {value}")
        return "\n".join(lines)


def measure_component(root: Component) -> ModelMetrics:
    """Measure an AutoMoDe component hierarchy."""
    metrics = ModelMetrics(name=root.name)
    components: List[Component]
    if isinstance(root, CompositeComponent):
        components = [component for _, component in root.walk()]
        metrics.hierarchy_depth = root.hierarchy_depth()
    else:
        components = [root]
        metrics.hierarchy_depth = 1

    metrics.components = len(components)
    for component in components:
        if isinstance(component, CompositeComponent):
            metrics.composite_components += 1
            metrics.channels += len(component.channels())
            metrics.delayed_channels += sum(
                1 for channel in component.channels() if channel.delayed)
        else:
            metrics.atomic_blocks += 1
        metrics.ports += len(component.ports())
        metrics.boolean_outputs += sum(
            1 for port in component.output_ports()
            if isinstance(port.port_type, BoolType))
        if isinstance(component, ExpressionComponent):
            for expression in component.output_expressions.values():
                metrics.expression_operators += operator_count(expression)
                metrics.if_then_else_operators += conditional_count(expression)
        if isinstance(component, ModeTransitionDiagram):
            metrics.mtd_count += 1
            metrics.explicit_modes += len(component.modes())
            metrics.mode_transitions += len(component.transitions())
            for mode in component.modes():
                if mode.behavior is not None:
                    nested = measure_component(mode.behavior)
                    metrics.atomic_blocks += nested.atomic_blocks
                    metrics.expression_operators += nested.expression_operators
                    metrics.if_then_else_operators += nested.if_then_else_operators
        if isinstance(component, StateTransitionDiagram):
            metrics.std_states += len(component.states())
            metrics.mode_transitions += len(component.transitions())
            for transition in component.transitions():
                metrics.expression_operators += operator_count(transition.guard)
                for action in transition.actions.values():
                    metrics.expression_operators += operator_count(action)
    return metrics


def compare_metrics(before: ModelMetrics, after: ModelMetrics) -> Dict[str, Any]:
    """Tabulate a before/after comparison (the case-study headline table)."""
    rows = {}
    before_dict = before.as_dict()
    after_dict = after.as_dict()
    for key in before_dict:
        if key == "name":
            continue
        rows[key] = {
            "before": before_dict[key],
            "after": after_dict.get(key, 0),
            "delta": after_dict.get(key, 0) - before_dict[key],
        }
    return rows


def format_comparison(before: ModelMetrics, after: ModelMetrics,
                      before_label: str = "before",
                      after_label: str = "after") -> str:
    """Render the comparison as an aligned text table."""
    rows = compare_metrics(before, after)
    header = f"{'metric':32} {before_label:>10} {after_label:>10} {'delta':>8}"
    lines = [header, "-" * len(header)]
    for key, entry in rows.items():
        lines.append(f"{key.replace('_', ' '):32} {entry['before']:>10} "
                     f"{entry['after']:>10} {entry['delta']:>+8}")
    return "\n".join(lines)
