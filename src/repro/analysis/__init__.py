"""Analyses over AutoMoDe models.

* :mod:`repro.analysis.conflicts` -- FAA rule-based actuator conflict detection
* :mod:`repro.analysis.metrics` -- model complexity metrics (case study)
* :mod:`repro.analysis.mode_analysis` -- global mode transition system
* :mod:`repro.analysis.well_definedness` -- LA/CCD target-specific conditions
* :mod:`repro.analysis.consistency` -- cross-level consistency checks
* :mod:`repro.analysis.lint` -- the unified static-analysis engine
  (IR dataflow verification, expression abstract interpretation,
  machine-level checks, JSON/SARIF export)
"""

from .conflicts import (ActuatorConflict, ConflictAnalysis, analyze_conflicts,
                        suggest_coordinator_name)
from .lint import (Finding, LintReport, certify_batch, findings_from_report,
                   lint_component, lint_flat_schedule, lint_model,
                   lint_schedule, to_sarif, verify_component)
from .consistency import (check_faa_fda_coverage, check_fda_la_allocation,
                          check_interface_refinement, check_la_ta_deployment)
from .metrics import (ModelMetrics, compare_metrics, format_comparison,
                      measure_component)
from .mode_analysis import (GlobalModeSystem, GlobalTransition, MachineInfo,
                            build_global_mode_system, find_mtds, find_stds,
                            guard_vocabulary, machine_inventory,
                            mode_explicitness_summary)
from .well_definedness import (OSEK_FIXED_PRIORITY, PROFILES, TIME_TRIGGERED,
                               RateTransitionFinding, TargetProfile,
                               check_rate_transitions, check_well_definedness,
                               missing_delays, repair_rate_transitions)

__all__ = [
    "Finding", "LintReport", "certify_batch", "findings_from_report",
    "lint_component", "lint_flat_schedule", "lint_model", "lint_schedule",
    "to_sarif", "verify_component",
    "ActuatorConflict", "ConflictAnalysis", "GlobalModeSystem",
    "GlobalTransition", "MachineInfo", "ModelMetrics", "OSEK_FIXED_PRIORITY",
    "PROFILES", "RateTransitionFinding", "TIME_TRIGGERED", "TargetProfile",
    "analyze_conflicts", "build_global_mode_system", "check_faa_fda_coverage",
    "check_fda_la_allocation", "check_interface_refinement",
    "check_la_ta_deployment", "check_rate_transitions",
    "check_well_definedness", "compare_metrics", "find_mtds", "find_stds",
    "format_comparison", "guard_vocabulary", "machine_inventory",
    "measure_component",
    "missing_delays", "mode_explicitness_summary", "repair_rate_transitions",
    "suggest_coordinator_name",
]
