"""Door-lock control example (paper Figs. 1 and 4).

Fig. 1 shows the message-based, time-synchronous communication of a
``DoorLockControl`` component with inputs ``T4S:LockStatus``,
``CRSH:CrashStatus`` and ``FZG_V:Voltage`` and outputs ``T1C..T4C:
LockCommand``; Fig. 4 shows the surrounding SSD on the FAA level.

This module builds

* the typed ``DoorLockControl`` FDA component (an MTD with ``Locked`` /
  ``Unlocked`` / ``CrashUnlocked`` modes driving the four door actuators),
* the FAA-level SSD around it: door-status sensors, the crash sensor, the
  board-net voltage, the four door-lock actuators, plus a second vehicle
  function (``ComfortClosing``) that also accesses the door-lock actuators --
  the actuator conflict the FAA rules are meant to find,
* the stimulus of Fig. 1 (a lock-status message at ``t`` and ``t+2``, absence
  at ``t+1``).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.components import Component, ExpressionComponent
from ..core.types import BOOL, EnumType, FloatType, IntType
from ..core.values import ABSENT, Stream
from ..notations.mtd import ModeTransitionDiagram
from ..notations.ssd import SSDComponent

#: Enumeration types of the door-lock example (Fig. 1 port types).
LOCK_STATUS = EnumType("LockStatus", ["unlocked", "locked"])
LOCK_COMMAND = EnumType("LockCommand", ["none", "lock", "unlock"])
CRASH_STATUS = EnumType("CrashStatus", ["no_crash", "crash"])
VOLTAGE = FloatType(0.0, 48.0)
SPEED = FloatType(0.0, 300.0)

DOOR_COMMANDS = ["T1C", "T2C", "T3C", "T4C"]


def build_door_lock_control(name: str = "DoorLockControl") -> ModeTransitionDiagram:
    """The central locking controller as an MTD with explicit modes."""
    mtd = ModeTransitionDiagram(name,
                                description="central door locking control "
                                            "(paper Fig. 1 / Fig. 4)")
    mtd.add_input("T4S", LOCK_STATUS, description="lock status from door 4")
    mtd.add_input("CRSH", CRASH_STATUS, description="crash sensor status")
    mtd.add_input("FZG_V", VOLTAGE, description="board net voltage")
    mtd.add_input("V_SPEED", SPEED, description="vehicle speed")
    for command in DOOR_COMMANDS:
        mtd.add_output(command, LOCK_COMMAND, description="door lock command")
    mtd.add_output("mode")

    def command_behavior(suffix: str, command: str) -> Component:
        behavior = ExpressionComponent(
            f"{name}_{suffix}",
            {door: f"'{command}'" for door in DOOR_COMMANDS})
        for door in DOOR_COMMANDS:
            behavior.add_output(door, LOCK_COMMAND)
        return behavior

    mtd.add_mode("Unlocked", command_behavior("unlocked", "none"), initial=True)
    mtd.add_mode("Locked", command_behavior("locked", "lock"))
    mtd.add_mode("CrashUnlocked", command_behavior("crash", "unlock"))

    mtd.add_transition("Unlocked", "Locked",
                       "present(V_SPEED) and V_SPEED > 10 and FZG_V > 9",
                       description="auto-lock above walking speed")
    mtd.add_transition("Locked", "Unlocked",
                       "present(V_SPEED) and V_SPEED < 1 and FZG_V > 9",
                       description="unlock at standstill")
    mtd.add_transition("Unlocked", "CrashUnlocked", "CRSH == 'crash'",
                       priority=10, description="crash overrides everything")
    mtd.add_transition("Locked", "CrashUnlocked", "CRSH == 'crash'",
                       priority=10, description="crash overrides everything")
    return mtd


def build_comfort_closing(name: str = "ComfortClosing") -> ExpressionComponent:
    """A second vehicle function that also drives the door-lock actuators."""
    component = ExpressionComponent(
        name,
        {"T1C": "if remote_request == 1 then 'lock' else 'none'",
         "T2C": "if remote_request == 1 then 'lock' else 'none'"},
        description="remote-key comfort closing, competing for the door locks")
    component.add_input("remote_request", IntType(0, 1))
    component.add_output("T1C", LOCK_COMMAND)
    component.add_output("T2C", LOCK_COMMAND)
    component.annotate("actuators", ["DoorLock1", "DoorLock2"])
    return component


def build_door_lock_faa(name: str = "DoorLockFAA") -> SSDComponent:
    """The FAA-level SSD of Fig. 4 with an intentional actuator conflict."""
    ssd = SSDComponent(name, description="FAA functional network around the "
                                         "door lock control (Fig. 4)")
    ssd.add_typed_input("door4_status", LOCK_STATUS)
    ssd.add_typed_input("crash_status", CRASH_STATUS)
    ssd.add_typed_input("board_voltage", VOLTAGE)
    ssd.add_typed_input("vehicle_speed", SPEED)
    ssd.add_typed_input("remote_request", IntType(0, 1))

    control = build_door_lock_control()
    control.annotate("actuators", ["DoorLock1", "DoorLock2", "DoorLock3",
                                   "DoorLock4"])
    control.annotate("sensors", ["DoorStatus4", "CrashSensor", "BoardNet"])
    comfort = build_comfort_closing()
    comfort.annotate("sensors", ["RemoteKey"])
    ssd.add(control, comfort)

    for door_index, door in enumerate(DOOR_COMMANDS, start=1):
        actuator = Component(f"DoorLock{door_index}",
                             description=f"door lock actuator {door_index}")
        actuator.annotate("role", "actuator")
        actuator.add_input("command", LOCK_COMMAND)
        if door_index <= 2:
            # front doors are additionally driven by the comfort-closing
            # function -- the actuator conflict the FAA rules must find
            actuator.add_input("comfort_command", LOCK_COMMAND)
        ssd.add_subcomponent(actuator)

    ssd.connect("door4_status", "DoorLockControl.T4S")
    ssd.connect("crash_status", "DoorLockControl.CRSH")
    ssd.connect("board_voltage", "DoorLockControl.FZG_V")
    ssd.connect("vehicle_speed", "DoorLockControl.V_SPEED")
    ssd.connect("remote_request", "ComfortClosing.remote_request")

    for door_index, door in enumerate(DOOR_COMMANDS, start=1):
        ssd.connect(f"DoorLockControl.{door}", f"DoorLock{door_index}.command",
                    delayed=True)
    ssd.connect("ComfortClosing.T1C", "DoorLock1.comfort_command", delayed=True)
    ssd.connect("ComfortClosing.T2C", "DoorLock2.comfort_command", delayed=True)
    return ssd


def fig1_stimuli(ticks: int = 3) -> Dict[str, Stream]:
    """The Fig.-1 observation: values 20 and 23 with an absence in between."""
    voltage = Stream([20.0, ABSENT, 23.0][:ticks])
    return {
        "T4S": Stream(["locked"] * ticks),
        "CRSH": Stream(["no_crash"] * ticks),
        "FZG_V": voltage,
        "V_SPEED": Stream([0.0] * ticks),
    }


def crash_scenario(ticks: int = 8) -> Dict[str, List]:
    """Drive, auto-lock, then crash -- exercises all three modes."""
    speeds = [0.0, 5.0, 20.0, 50.0, 50.0, 50.0, 0.0, 0.0][:ticks]
    crash = ["no_crash"] * ticks
    if ticks > 5:
        crash[5] = "crash"
    return {
        "T4S": ["locked"] * ticks,
        "CRSH": crash,
        "FZG_V": [12.0] * ticks,
        "V_SPEED": speeds,
    }
