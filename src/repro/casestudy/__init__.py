"""Case-study models: door lock (Figs. 1/4), momentum controller (Fig. 5),
gasoline engine control (Sec. 5, Figs. 6-8) and its reengineered form."""

from .door_lock import (LOCK_COMMAND, LOCK_STATUS, build_comfort_closing,
                        build_door_lock_control, build_door_lock_faa,
                        crash_scenario, fig1_stimuli)
from .engine_control import (ENGINE_MODE_NAMES, build_crank_sequencer_std,
                             build_engine_ascet_project, build_engine_ccd,
                             build_engine_modes_mtd, driving_scenario)
from .momentum import (acceleration_scenario, build_closed_loop,
                       build_momentum_controller)
from .reengineered import (COMPARED_SIGNALS, ascet_reference_outputs,
                           build_reengineered_fda, compare_behaviour,
                           reengineered_outputs)

__all__ = [
    "COMPARED_SIGNALS", "ENGINE_MODE_NAMES", "LOCK_COMMAND", "LOCK_STATUS",
    "acceleration_scenario", "ascet_reference_outputs",
    "build_closed_loop", "build_comfort_closing", "build_crank_sequencer_std",
    "build_door_lock_control",
    "build_door_lock_faa", "build_engine_ascet_project", "build_engine_ccd",
    "build_engine_modes_mtd", "build_momentum_controller",
    "build_reengineered_fda", "compare_behaviour", "crash_scenario",
    "driving_scenario", "fig1_stimuli", "reengineered_outputs",
]
