"""Four-stroke gasoline engine control case study (paper Sec. 5, Figs. 6-8).

The original case study reengineered a proprietary Bosch ASCET-SD model of a
gasoline engine controller.  That model is not available, so this module
builds a synthetic ASCET project with the structures the paper describes:

* a **central component** (``CentralState``) that "emits a large number of
  flags which altogether represent the global state of the engine",
* a **ThrottleRateOfChange** module whose rate computation hides two
  operation modes (``FuelEnabled`` / ``CrankingOverrun``) inside If-Then-Else
  control flow -- the paper's Fig. 8 example,
* further modules with implicit modes: fuel injection (fuel cut on overrun),
  ignition timing (cranking vs. running) and idle speed control,
* straight-line signal conditioning (air mass flow),
* multi-rate activation (1-, 2- and 10-tick tasks).

In addition the module provides the *target* artefacts the AutoMoDe figures
show: the engine-operation-mode MTD of Fig. 6 and the simplified engine
controller CCD of Fig. 7, plus a driving scenario used for simulation-based
equivalence checks.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.clocks import every
from ..core.types import BOOL, FloatType
from ..notations.blocks import Gain, Hold, Limit, LookupTable1D, UnitDelay
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from ..notations.dfd import DataFlowDiagram
from ..notations.mtd import ModeTransitionDiagram
from ..notations.std import StateTransitionDiagram
from ..core.components import ExpressionComponent
from ..ascet.model import (AscetModule, AscetProject, AscetTask, assign,
                           if_then_else)

RPM = FloatType(0.0, 8000.0)
PERCENT = FloatType(0.0, 100.0)
TEMPERATURE = FloatType(-40.0, 150.0)
MASS_FLOW = FloatType(0.0, 600.0)
INJECTION_TIME = FloatType(0.0, 25.0)
ANGLE = FloatType(-20.0, 60.0)

#: Mode names chosen by the engineer for the Fig.-8 reengineering.
THROTTLE_MODE_NAMES = {"calc_rate": ["FuelEnabled", "CrankingOverrun"]}
FUEL_MODE_NAMES = {"calc_ti": ["Injecting", "FuelCut"]}
IGNITION_MODE_NAMES = {"calc_ign": ["CrankingIgnition", "RunningIgnition"]}
IDLE_MODE_NAMES = {"calc_idle": ["IdleActive", "IdleInactive"]}

#: All per-module mode-name choices, keyed by module name (used by the
#: project-level white-box reengineering).
ENGINE_MODE_NAMES: Dict[str, Dict[str, List[str]]] = {
    "ThrottleRateOfChange": THROTTLE_MODE_NAMES,
    "FuelInjection": FUEL_MODE_NAMES,
    "IgnitionTiming": IGNITION_MODE_NAMES,
    "IdleSpeedControl": IDLE_MODE_NAMES,
}


# --------------------------------------------------------------------------
# the original (synthetic) ASCET project
# --------------------------------------------------------------------------

def build_central_state_module() -> AscetModule:
    """The central flag-emitting component of the case study."""
    module = AscetModule("CentralState",
                         description="central component emitting the global "
                                     "engine state as individual flags")
    module.receive("n", 0.0)
    module.receive("ped", 0.0)
    module.receive("t_eng", 20.0)
    module.send("b_crank", False)
    module.send("b_fuel", False)
    module.send("b_overrun", False)
    module.send("b_warm", False)
    module.send("b_idle", False)
    module.send("b_full_load", False)
    process = module.new_process("compute_flags", period=1)
    process.add(assign("b_crank", "n > 0 and n < 400"))
    process.add(assign("b_overrun", "ped <= 0 and n > 3000"))
    process.add(assign("b_fuel", "n >= 400 and not (ped <= 0 and n > 3000)"))
    process.add(assign("b_warm", "t_eng > 70"))
    process.add(assign("b_idle", "ped <= 2 and n >= 400 and n < 1100"))
    process.add(assign("b_full_load", "ped > 80"))
    return module


def build_throttle_module() -> AscetModule:
    """The ThrottleRateOfChange module of Fig. 8 (implicit modes)."""
    module = AscetModule("ThrottleRateOfChange",
                         description="throttle valve rate-of-change "
                                     "determination (paper Fig. 8)")
    module.receive("n", 0.0)
    module.receive("b_fuel", False)
    module.receive("pos", 0.0)
    module.receive("pos_des", 0.0)
    module.parameter("k_rate", 0.4)
    module.parameter("overrun_rate", 2.5)
    module.parameter("rate_max", 12.0)
    module.send("throttle_rate", 0.0)
    process = module.new_process("calc_rate", period=1)
    process.add(if_then_else(
        "b_fuel and n > 600",
        [assign("throttle_rate",
                "limit((pos_des - pos) * k_rate, 0 - rate_max, rate_max)")],
        [assign("throttle_rate", "overrun_rate")]))
    return module


def build_air_mass_module() -> AscetModule:
    """Straight-line air-mass-flow conditioning (no implicit modes)."""
    module = AscetModule("AirMassFlow",
                         description="intake air mass flow estimation")
    module.receive("throttle_angle", 0.0)
    module.receive("n", 0.0)
    module.parameter("k_air", 0.06)
    module.send("air_mass", 0.0)
    process = module.new_process("calc_air", period=1)
    process.add(assign("air_mass", "throttle_angle * k_air * (n / 1000 + 1)"))
    return module


def build_fuel_injection_module() -> AscetModule:
    """Fuel injection with implicit fuel-cut mode."""
    module = AscetModule("FuelInjection",
                         description="injection time computation with "
                                     "overrun fuel cut")
    module.receive("n", 0.0)
    module.receive("air_mass", 0.0)
    module.receive("b_fuel", False)
    module.receive("b_overrun", False)
    module.parameter("k_inj", 85.0)
    module.parameter("ti_min", 0.4)
    module.send("ti", 0.0)
    process = module.new_process("calc_ti", period=1)
    process.add(if_then_else(
        "b_fuel and not b_overrun",
        [assign("ti", "max(k_inj * air_mass / max(n, 400), ti_min)")],
        [assign("ti", "0")]))
    return module


def build_ignition_module() -> AscetModule:
    """Ignition timing with implicit cranking mode."""
    module = AscetModule("IgnitionTiming",
                         description="ignition advance angle computation")
    module.receive("n", 0.0)
    module.receive("air_mass", 0.0)
    module.receive("b_crank", False)
    module.parameter("base_advance", 10.0)
    module.parameter("crank_advance", 5.0)
    module.send("ignition_angle", 0.0)
    process = module.new_process("calc_ign", period=2)
    process.add(if_then_else(
        "b_crank",
        [assign("ignition_angle", "crank_advance")],
        [assign("ignition_angle",
                "limit(base_advance + n / 1000 - air_mass * 0.02, 0 - 10, 45)")]))
    return module


def build_idle_speed_module() -> AscetModule:
    """Idle speed control with an implicit active/inactive mode."""
    module = AscetModule("IdleSpeedControl",
                         description="idle speed correction")
    module.receive("n", 0.0)
    module.receive("ped", 0.0)
    module.receive("b_idle", False)
    module.parameter("n_idle_target", 800.0)
    module.parameter("k_idle", 0.02)
    module.send("idle_correction", 0.0)
    process = module.new_process("calc_idle", period=10)
    process.add(if_then_else(
        "b_idle and ped <= 2",
        [assign("idle_correction",
                "limit((n_idle_target - n) * k_idle, 0 - 8, 8)")],
        [assign("idle_correction", "0")]))
    return module


def build_engine_ascet_project() -> AscetProject:
    """The full synthetic ASCET project of the case study."""
    project = AscetProject("GasolineEngineControl",
                           description="synthetic four-stroke gasoline engine "
                                       "controller (stand-in for the Bosch "
                                       "case-study model)")
    project.add_module(build_central_state_module())
    project.add_module(build_throttle_module())
    project.add_module(build_air_mass_module())
    project.add_module(build_fuel_injection_module())
    project.add_module(build_ignition_module())
    project.add_module(build_idle_speed_module())

    project.add_task(AscetTask("Task_1ms", period=1, priority=1, processes=[
        ("CentralState", "compute_flags"),
        ("AirMassFlow", "calc_air"),
        ("ThrottleRateOfChange", "calc_rate"),
        ("FuelInjection", "calc_ti"),
    ]))
    project.add_task(AscetTask("Task_2ms", period=2, priority=2, processes=[
        ("IgnitionTiming", "calc_ign"),
    ]))
    project.add_task(AscetTask("Task_10ms", period=10, priority=3, processes=[
        ("IdleSpeedControl", "calc_idle"),
    ]))
    return project


# --------------------------------------------------------------------------
# Fig. 6: engine operation modes as an MTD
# --------------------------------------------------------------------------

def build_engine_modes_mtd(name: str = "EngineOperationModes"
                           ) -> ModeTransitionDiagram:
    """The engine-operation-mode MTD of paper Fig. 6."""
    mtd = ModeTransitionDiagram(name,
                                description="engine operation modes "
                                            "(paper Fig. 6)")
    mtd.add_input("n", RPM)
    mtd.add_input("ped", PERCENT)
    mtd.add_input("t_eng", TEMPERATURE)
    mtd.add_output("fuel_factor", FloatType(0.0, 1.5))
    mtd.add_output("mode")

    def factor_behavior(mode: str, expression: str) -> ExpressionComponent:
        behavior = ExpressionComponent(f"{name}_{mode}",
                                       {"fuel_factor": expression})
        for variable in behavior.output_expressions["fuel_factor"].variables():
            behavior.add_input(variable)
        behavior.add_output("fuel_factor", FloatType(0.0, 1.5))
        return behavior

    mtd.add_mode("Off", factor_behavior("Off", "0"), initial=True)
    mtd.add_mode("Cranking", factor_behavior("Cranking",
                                             "if t_eng < 20 then 1.3 else 1.1"))
    mtd.add_mode("Idle", factor_behavior("Idle", "1"))
    mtd.add_mode("PartLoad", factor_behavior("PartLoad", "1 + ped / 400"))
    mtd.add_mode("FullLoad", factor_behavior("FullLoad", "1.25"))
    mtd.add_mode("Overrun", factor_behavior("Overrun", "0"))

    mtd.add_transition("Off", "Cranking", "n > 0", description="starter engaged")
    mtd.add_transition("Cranking", "Idle", "n > 700", description="engine runs")
    mtd.add_transition("Cranking", "Off", "n <= 0", description="start aborted")
    mtd.add_transition("Idle", "PartLoad", "ped > 5")
    mtd.add_transition("Idle", "Off", "n <= 50")
    mtd.add_transition("PartLoad", "FullLoad", "ped > 80")
    mtd.add_transition("PartLoad", "Idle", "ped <= 5 and n < 1500")
    mtd.add_transition("PartLoad", "Overrun", "ped <= 0 and n > 3000",
                       priority=5)
    mtd.add_transition("FullLoad", "PartLoad", "ped <= 80")
    mtd.add_transition("Overrun", "PartLoad", "ped > 5")
    mtd.add_transition("Overrun", "Idle", "n <= 1500")
    return mtd


# --------------------------------------------------------------------------
# engine-start sequencing as an STD (companion to the Fig.-6 mode MTD)
# --------------------------------------------------------------------------

def build_crank_sequencer_std(name: str = "CrankSequencer"
                              ) -> StateTransitionDiagram:
    """The engine-start sequencer as a state transition diagram.

    Where the Fig.-6 MTD captures the *operating* modes, the sequencer
    captures the discrete start-up protocol the central state module drives:
    fuel-pump priming on key-on, cranking with a bounded attempt counter,
    and the hand-over to closed-loop running.  It exercises every STD
    feature -- guarded priorities, local-variable actions, output-port
    actions overriding state emissions, and the automatic ``state`` port.
    """
    std = StateTransitionDiagram(name,
                                 description="engine start-up sequencing "
                                             "(key-on priming, cranking, "
                                             "run hand-over)")
    std.add_input("key", BOOL)
    std.add_input("n", RPM)
    std.add_output("fuel_pump")
    std.add_output("state")
    std.add_variable("crank_ticks", 0)

    std.add_state("Rest", initial=True, emissions={"fuel_pump": "'off'"})
    std.add_state("Priming", emissions={"fuel_pump": "'prime'"})
    std.add_state("Cranking", emissions={"fuel_pump": "'deliver'"})
    std.add_state("Running", emissions={"fuel_pump": "'deliver'"})

    std.add_transition("Rest", "Priming", "key",
                       actions={"crank_ticks": "0"},
                       description="key-on: start priming")
    std.add_transition("Priming", "Rest", "not key", priority=2,
                       description="key released during priming")
    std.add_transition("Priming", "Cranking", "present(n)",
                       actions={"fuel_pump": "'spin-up'"},
                       description="starter engaged")
    std.add_transition("Cranking", "Rest", "not key or crank_ticks > 40",
                       priority=3, actions={"fuel_pump": "'off'"},
                       description="start aborted or attempt exhausted")
    std.add_transition("Cranking", "Running", "n > 700", priority=2,
                       description="engine fires")
    std.add_transition("Cranking", "Cranking", "n <= 700",
                       actions={"crank_ticks": "crank_ticks + 1"},
                       description="keep cranking, count the ticks")
    std.add_transition("Running", "Rest", "not key or n <= 50",
                       description="key-off or stall")
    return std


# --------------------------------------------------------------------------
# Fig. 7: simplified engine controller CCD
# --------------------------------------------------------------------------

def build_engine_ccd(name: str = "SimplifiedEngineController"
                     ) -> ClusterCommunicationDiagram:
    """The simplified engine-controller CCD of paper Fig. 7.

    Four clusters with explicit rates: fast sensor processing and fuel/
    ignition computation, slower idle-speed control and a slow monitoring
    cluster.  The monitoring-to-fuel channel is a slow-to-fast rate
    transition, deliberately left without a delay so the OSEK
    well-definedness check has something to report (and repair).
    """
    ccd = ClusterCommunicationDiagram(name,
                                      description="simplified engine controller "
                                                  "(paper Fig. 7)")
    ccd.add_input("throttle_angle", PERCENT, every(1))
    ccd.add_input("n", RPM, every(1))
    ccd.add_input("ped", PERCENT, every(1))
    ccd.add_output("ti", INJECTION_TIME, every(1))
    ccd.add_output("ignition_angle", ANGLE, every(2))
    ccd.add_output("idle_correction", FloatType(-8.0, 8.0), every(10))

    sensors = Cluster("SensorProcessing", rate=every(1),
                      description="sensor acquisition and conditioning")
    sensors.add_input("throttle_angle", PERCENT, every(1))
    sensors.add_input("n_raw", RPM, every(1))
    sensors.add_output("air_mass", MASS_FLOW, every(1))
    sensors.add_output("n_filtered", RPM, every(1))
    air = ExpressionComponent("AirMass", {"air_mass": "throttle_angle * 0.06 * (n / 1000 + 1)"})
    air.add_input("throttle_angle")
    air.add_input("n")
    air.add_output("air_mass")
    speed_filter = Gain("SpeedFilter", factor=1.0)
    sensors.add(air, speed_filter)
    sensors.connect("throttle_angle", "AirMass.throttle_angle")
    sensors.connect("n_raw", "AirMass.n")
    sensors.connect("n_raw", "SpeedFilter.in1")
    sensors.connect("AirMass.air_mass", "air_mass")
    sensors.connect("SpeedFilter.out", "n_filtered")

    fuel = Cluster("FuelAndIgnition", rate=every(1),
                   description="injection time and ignition angle")
    fuel.add_input("air_mass", MASS_FLOW, every(1))
    fuel.add_input("n", RPM, every(1))
    fuel.add_input("fuel_enable", BOOL, every(1))
    fuel.add_output("ti", INJECTION_TIME, every(1))
    fuel.add_output("ignition_angle", ANGLE, every(1))
    injection = ExpressionComponent(
        "Injection",
        {"ti": "if fuel_enable then max(85 * air_mass / max(n, 400), 0.4) else 0"})
    injection.add_input("fuel_enable")
    injection.add_input("air_mass")
    injection.add_input("n")
    injection.add_output("ti")
    ignition = ExpressionComponent(
        "Ignition", {"angle": "limit(10 + n / 1000 - air_mass * 0.02, 0 - 10, 45)"})
    ignition.add_input("n")
    ignition.add_input("air_mass")
    ignition.add_output("angle")
    # the plausibility flag arrives at the slow monitoring rate; a hold block
    # latches it so injection reacts to the most recent value at every tick
    enable_latch = Hold("EnableLatch", initial=True)
    fuel.add(injection, ignition, enable_latch)
    fuel.connect("air_mass", "Injection.air_mass")
    fuel.connect("n", "Injection.n")
    fuel.connect("fuel_enable", "EnableLatch.in1")
    fuel.connect("EnableLatch.out", "Injection.fuel_enable")
    fuel.connect("air_mass", "Ignition.air_mass")
    fuel.connect("n", "Ignition.n")
    fuel.connect("Injection.ti", "ti")
    fuel.connect("Ignition.angle", "ignition_angle")

    idle = Cluster("IdleSpeed", rate=every(10),
                   description="idle speed correction")
    idle.add_input("n", RPM, every(10))
    idle.add_input("ped", PERCENT, every(10))
    idle.add_output("idle_correction", FloatType(-8.0, 8.0), every(10))
    idle_controller = ExpressionComponent(
        "IdleController",
        {"corr": "if ped <= 2 then limit((800 - n) * 0.02, 0 - 8, 8) else 0"})
    idle_controller.add_input("ped")
    idle_controller.add_input("n")
    idle_controller.add_output("corr")
    idle.add_subcomponent(idle_controller)
    idle.connect("n", "IdleController.n")
    idle.connect("ped", "IdleController.ped")
    idle.connect("IdleController.corr", "idle_correction")

    monitor = Cluster("Monitoring", rate=every(20),
                      description="slow plausibility monitoring")
    monitor.add_input("n", RPM, every(20))
    monitor.add_output("fuel_enable", BOOL, every(20))
    plausibility = ExpressionComponent("Plausibility",
                                       {"ok": "n >= 0 and n < 7500"})
    plausibility.add_input("n")
    plausibility.add_output("ok")
    monitor.add_subcomponent(plausibility)
    monitor.connect("n", "Plausibility.n")
    monitor.connect("Plausibility.ok", "fuel_enable")

    ccd.add_cluster(sensors)
    ccd.add_cluster(fuel)
    ccd.add_cluster(idle)
    ccd.add_cluster(monitor)

    ccd.connect("throttle_angle", "SensorProcessing.throttle_angle")
    ccd.connect("n", "SensorProcessing.n_raw")
    ccd.connect("n", "IdleSpeed.n")
    ccd.connect("n", "Monitoring.n")
    ccd.connect("ped", "IdleSpeed.ped")
    # fast-to-fast (same rate): no delay required
    ccd.connect("SensorProcessing.air_mass", "FuelAndIgnition.air_mass")
    ccd.connect("SensorProcessing.n_filtered", "FuelAndIgnition.n")
    # slow-to-fast: requires a delay under the OSEK profile -- intentionally
    # left instantaneous so the well-definedness check reports it
    ccd.connect("Monitoring.fuel_enable", "FuelAndIgnition.fuel_enable")
    ccd.connect("FuelAndIgnition.ti", "ti")
    ccd.connect("FuelAndIgnition.ignition_angle", "ignition_angle")
    ccd.connect("IdleSpeed.idle_correction", "idle_correction")
    return ccd


# --------------------------------------------------------------------------
# driving scenario
# --------------------------------------------------------------------------

def driving_scenario(ticks: int = 120) -> Dict[str, List[float]]:
    """A start / idle / acceleration / overrun / stop driving profile.

    Returns per-signal value lists (present at every tick) for the signals of
    the ASCET project and its reengineered counterpart: engine speed ``n``,
    pedal position ``ped``, engine temperature ``t_eng``, throttle position
    ``pos`` and desired position ``pos_des`` and throttle angle.
    """
    n: List[float] = []
    ped: List[float] = []
    t_eng: List[float] = []
    pos: List[float] = []
    pos_des: List[float] = []
    throttle_angle: List[float] = []

    speed = 0.0
    temperature = 20.0
    position = 0.0
    for tick in range(ticks):
        if tick < 5:                      # key on, engine off
            pedal, target = 0.0, 0.0
            speed = 0.0
        elif tick < 15:                   # cranking
            pedal, target = 0.0, 5.0
            speed = min(650.0, speed + 90.0)
        elif tick < 40:                   # idle, warming up
            pedal, target = 1.0, 8.0
            speed = 800.0 + 10.0 * ((tick % 4) - 2)
        elif tick < 70:                   # acceleration / part load
            pedal = min(60.0, 5.0 + 2.0 * (tick - 40))
            target = 10.0 + 0.8 * pedal
            speed = min(5200.0, speed + 160.0)
        elif tick < 90:                   # overrun (pedal released, high rpm)
            pedal, target = 0.0, 2.0
            speed = max(1800.0, speed - 170.0)
        elif tick < 110:                  # back to idle
            pedal, target = 1.0, 8.0
            speed = max(800.0, speed - 120.0)
        else:                             # switch off
            pedal, target = 0.0, 0.0
            speed = max(0.0, speed - 400.0)
        temperature = min(95.0, temperature + 0.7)
        position = position + max(-6.0, min(6.0, target - position))

        n.append(round(speed, 1))
        ped.append(round(pedal, 1))
        t_eng.append(round(temperature, 1))
        pos.append(round(position, 2))
        pos_des.append(round(target, 2))
        throttle_angle.append(round(position, 2))

    return {"n": n, "ped": ped, "t_eng": t_eng, "pos": pos,
            "pos_des": pos_des, "throttle_angle": throttle_angle}
