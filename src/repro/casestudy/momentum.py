"""Longitudinal momentum controller (paper Fig. 5).

Fig. 5 shows an AutoMoDe DFD of a longitudinal momentum controller whose
``ADD`` block is defined by the base-language expression ``ch1+ch2+ch3``.
This module builds a complete, executable version of that controller:

* three momentum requests (driver pedal, adaptive cruise control, hill-hold)
  are summed by the ``ADD`` expression block,
* the total request is limited, rate-limited and split into an engine-torque
  command and a brake command,
* a simple longitudinal vehicle model (integrator) is provided so the
  controller can be simulated in closed loop.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.types import FloatType
from ..notations.blocks import (Constant, Gain, Integrator, Limit, RateLimiter,
                                Subtract)
from ..notations.dfd import DataFlowDiagram
from ..simulation.multirate import step


MOMENTUM = FloatType(-5000.0, 5000.0)
TORQUE = FloatType(0.0, 400.0)
BRAKE = FloatType(0.0, 5000.0)


def build_momentum_controller(name: str = "LongitudinalMomentum") -> DataFlowDiagram:
    """The Fig.-5 DFD: three requests summed, limited and split."""
    dfd = DataFlowDiagram(name,
                          description="longitudinal momentum controller "
                                      "(paper Fig. 5)")
    dfd.add_input("ch1", MOMENTUM, description="driver momentum request")
    dfd.add_input("ch2", MOMENTUM, description="ACC momentum request")
    dfd.add_input("ch3", MOMENTUM, description="hill-hold momentum request")
    dfd.add_output("engine_torque", TORQUE)
    dfd.add_output("brake_momentum", BRAKE)
    dfd.add_output("total_request", MOMENTUM)

    add = dfd.add_expression_block("ADD", {"out": "ch1 + ch2 + ch3"})
    limit = Limit("LIMIT", low=-5000.0, high=5000.0)
    slew = RateLimiter("SLEW", max_delta=500.0)
    to_torque = dfd.add_expression_block(
        "TORQUE_SPLIT", {"torque": "if total > 0 then limit(total * 0.08, 0, 400) else 0"})
    to_brake = dfd.add_expression_block(
        "BRAKE_SPLIT", {"brake": "if total < 0 then 0 - total else 0"})
    dfd.add(limit, slew)

    dfd.connect("ch1", "ADD.ch1")
    dfd.connect("ch2", "ADD.ch2")
    dfd.connect("ch3", "ADD.ch3")
    dfd.connect("ADD.out", "LIMIT.in1")
    dfd.connect("LIMIT.out", "SLEW.in1")
    dfd.connect("SLEW.out", "TORQUE_SPLIT.total")
    dfd.connect("SLEW.out", "BRAKE_SPLIT.total")
    dfd.connect("TORQUE_SPLIT.torque", "engine_torque")
    dfd.connect("BRAKE_SPLIT.brake", "brake_momentum")
    dfd.connect("SLEW.out", "total_request")
    return dfd


def build_closed_loop(name: str = "LongitudinalClosedLoop") -> DataFlowDiagram:
    """Controller plus a one-state vehicle model for closed-loop simulation."""
    dfd = DataFlowDiagram(name, description="momentum controller in closed loop")
    dfd.add_input("speed_setpoint", FloatType(0.0, 70.0))
    dfd.add_input("hill_force", MOMENTUM)
    dfd.add_output("speed", FloatType(-10.0, 100.0))
    dfd.add_output("engine_torque", TORQUE)

    controller = build_momentum_controller("Controller")
    error = Subtract("SpeedError")
    request = Gain("RequestGain", factor=120.0)
    vehicle = Integrator("Vehicle", gain=0.002, initial=0.0, low=-10.0, high=100.0)
    accel = dfd.add_expression_block(
        "Acceleration", {"accel": "torque * 3 - brake - drag"})
    drag = Gain("Drag", factor=15.0)
    feedback = dfd.add_expression_block("SpeedOut", {"speed": "v"})
    no_acc_request = Constant("NoAccRequest", 0.0)

    dfd.add(controller, error, request, vehicle, drag, no_acc_request)

    dfd.connect("speed_setpoint", "SpeedError.minuend")
    dfd.connect("Vehicle.out", "SpeedError.subtrahend", delayed=True,
                initial_value=0.0)
    dfd.connect("SpeedError.out", "RequestGain.in1")
    dfd.connect("RequestGain.out", "Controller.ch1")
    dfd.connect("hill_force", "Controller.ch3")
    # The ACC momentum request is inactive in this closed loop; the ADD block
    # of the controller needs all three operands present, so a constant zero
    # request is wired to ch2.
    dfd.connect("NoAccRequest.out", "Controller.ch2")
    dfd.connect("Controller.engine_torque", "Acceleration.torque")
    dfd.connect("Controller.brake_momentum", "Acceleration.brake")
    dfd.connect("Vehicle.out", "Drag.in1", delayed=True, initial_value=0.0)
    dfd.connect("Drag.out", "Acceleration.drag")
    dfd.connect("Acceleration.accel", "Vehicle.in1")
    dfd.connect("Vehicle.out", "SpeedOut.v")
    dfd.connect("SpeedOut.speed", "speed")
    dfd.connect("Controller.engine_torque", "engine_torque")
    return dfd


def acceleration_scenario(ticks: int = 60) -> Dict[str, List]:
    """Setpoint step from 0 to 30 m/s with a later hill disturbance."""
    setpoint = step(ticks, step_tick=5, before=0.0, after=30.0)
    hill = step(ticks, step_tick=40, before=0.0, after=-800.0)
    return {"speed_setpoint": setpoint.values(), "hill_force": hill.values()}
