"""The reengineered AutoMoDe model of the engine controller (paper Sec. 5).

This module applies the white-box reengineering transformation to the
synthetic ASCET project of :mod:`repro.casestudy.engine_control` and provides
the comparison machinery of the case study:

* :func:`build_reengineered_fda` -- the FDA-level SSD with explicit MTDs,
* :func:`ascet_reference_outputs` -- the original model's outputs on a
  driving scenario (executed with the ASCET interpreter, respecting the
  original multi-rate task activation),
* :func:`reengineered_outputs` -- the reengineered model's outputs on the
  same scenario,
* :func:`compare_behaviour` -- the per-signal maximum deviation, the evidence
  that reengineering preserved the behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..ascet.model import AscetInterpreter, AscetProject
from ..core.values import is_present
from ..notations.ssd import SSDComponent
from ..simulation.engine import simulate
from ..transformations.reengineering import reengineer_project
from .engine_control import (ENGINE_MODE_NAMES, build_engine_ascet_project,
                             driving_scenario)

#: The output signals compared between the original and reengineered model.
COMPARED_SIGNALS = ["throttle_rate", "ti", "ignition_angle", "idle_correction",
                    "b_fuel", "b_overrun", "b_crank", "b_idle"]

#: External input signals of both models.
EXTERNAL_INPUTS = ["n", "ped", "t_eng", "pos", "pos_des", "throttle_angle"]


def build_reengineered_fda(project: AscetProject = None) -> SSDComponent:
    """White-box reengineer the engine project into an FDA-level SSD."""
    if project is None:
        project = build_engine_ascet_project()
    return reengineer_project(project, ENGINE_MODE_NAMES,
                              name="GasolineEngineControl_FDA")


def ascet_reference_outputs(scenario: Mapping[str, Sequence[float]] = None,
                            ticks: int = None) -> Dict[str, List[float]]:
    """Run the original ASCET project on the scenario (multi-rate activation).

    Modules are executed in the order of the original task bodies
    (CentralState and the fast modules every tick, ignition every 2 ticks,
    idle control every 10 ticks); inter-module messages are propagated through
    a shared signal pool, exactly as the ERCOS-style message copy mechanism
    would at the start of each task activation.
    """
    project = build_engine_ascet_project()
    if scenario is None:
        scenario = driving_scenario(ticks or 120)
    length = len(next(iter(scenario.values())))

    interpreters = {module.name: AscetInterpreter(module)
                    for module in project.module_list()}
    activation_order: List[str] = []
    for task in project.task_list():
        for module_name, _process in task.processes:
            if module_name not in activation_order:
                activation_order.append(module_name)

    pool: Dict[str, float] = {}
    outputs: Dict[str, List[float]] = {name: [] for name in COMPARED_SIGNALS}
    for tick in range(length):
        for name in EXTERNAL_INPUTS:
            if name in scenario:
                pool[name] = scenario[name][tick]
        for module_name in activation_order:
            module = project.module(module_name)
            interpreter = interpreters[module_name]
            inputs = {name: pool[name] for name in module.receive_messages
                      if name in pool}
            sent = interpreter.step(inputs, tick)
            pool.update(sent)
        for name in COMPARED_SIGNALS:
            outputs[name].append(pool.get(name, 0.0))
    return outputs


def reengineered_outputs(scenario: Mapping[str, Sequence[float]] = None,
                         ticks: int = None) -> Dict[str, List[float]]:
    """Run the reengineered FDA model on the same scenario.

    The FDA-level SSD uses delayed channels between components (the SSD
    semantics); to compare against the sequential, same-tick propagation of
    the original task bodies, each reengineered component is simulated
    individually with the signal pool of the current tick -- the same
    observation point used for the ASCET reference.
    """
    if scenario is None:
        scenario = driving_scenario(ticks or 120)
    length = len(next(iter(scenario.values())))
    fda = build_reengineered_fda()

    components = fda.subcomponents()
    states = {component.name: component.initial_state()
              for component in components}
    order = ["CentralState", "AirMassFlow", "ThrottleRateOfChange",
             "FuelInjection", "IgnitionTiming", "IdleSpeedControl"]
    ordered = [component for name in order for component in components
               if component.name == name]

    pool: Dict[str, float] = {}
    outputs: Dict[str, List[float]] = {name: [] for name in COMPARED_SIGNALS}
    periods = {"IgnitionTiming": 2, "IdleSpeedControl": 10}
    for tick in range(length):
        for name in EXTERNAL_INPUTS:
            if name in scenario:
                pool[name] = scenario[name][tick]
        for component in ordered:
            period = periods.get(component.name, 1)
            if tick % period != 0:
                continue
            inputs = {name: pool.get(name, 0.0)
                      for name in component.input_names()}
            component_outputs, states[component.name] = component.react(
                inputs, states[component.name], tick)
            for name, value in component_outputs.items():
                if is_present(value) and name != "mode":
                    pool[name] = value
        for name in COMPARED_SIGNALS:
            outputs[name].append(pool.get(name, 0.0))
    return outputs


def compare_behaviour(scenario: Mapping[str, Sequence[float]] = None,
                      ticks: int = 120) -> Dict[str, float]:
    """Maximum absolute deviation per compared signal (0.0 means identical)."""
    if scenario is None:
        scenario = driving_scenario(ticks)
    reference = ascet_reference_outputs(scenario)
    reengineered = reengineered_outputs(scenario)
    deviations: Dict[str, float] = {}
    for name in COMPARED_SIGNALS:
        worst = 0.0
        for expected, actual in zip(reference[name], reengineered[name]):
            worst = max(worst, abs(float(expected) - float(actual)))
        deviations[name] = worst
    return deviations
