"""Greedy battery minimization.

A successful search ends with a corpus in which every scenario earned
coverage *at the moment it was absorbed* -- but later scenarios routinely
subsume earlier ones (a drive profile that reaches ``Overrun`` usually
passes through everything a ``Cranking``-only scenario contributed).  This
module re-runs the final corpus once, computes each scenario's absolute
coverage contribution, and keeps a greedy set cover: scenarios are picked
by largest marginal contribution (original order breaking ties) until the
union of the kept scenarios equals the union of the whole corpus, and
everything else is dropped.

The result is the *minimized battery*: the regression suite a validation
team would actually commit, typically a small fraction of the corpus with
identical mode/transition coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.components import Component
from ..scenarios.generators import Scenario
from ..scenarios.runner import run_sharded
from .fitness import CoverageFrontier

#: One coverage item owned by a scenario: ("mode"|"transition", path, key).
CoverageItem = Tuple[str, str, Any]


@dataclass
class MinimizationOutcome:
    """The kept/dropped split of one minimization pass."""

    kept: List[Scenario] = field(default_factory=list)
    dropped: List[str] = field(default_factory=list)
    evaluations: int = 0
    covered_items: int = 0

    def kept_names(self) -> List[str]:
        return [scenario.name for scenario in self.kept]


def _contribution(frontier: CoverageFrontier,
                  result: Any) -> Set[CoverageItem]:
    items: Set[CoverageItem] = set()
    for path, (modes, pairs) in frontier.observed(result).items():
        items.update(("mode", path, mode) for mode in modes)
        items.update(("transition", path, pair) for pair in pairs)
    return items


def minimize_battery(component: Component, scenarios: Sequence[Scenario],
                     *, executor: str = "serial",
                     max_workers: Optional[int] = None,
                     chunk_size: Optional[int] = None
                     ) -> MinimizationOutcome:
    """Re-run *scenarios* once and drop every one that adds no coverage.

    Greedy maximum-marginal-contribution set cover over the declared
    modes/transitions the battery exercises; deterministic (ties break in
    battery order) and executor-independent, because contributions are
    derived from the traces, which are byte-identical across executors.
    Failed scenarios contribute nothing and are always dropped.
    """
    battery = list(scenarios)
    outcome = MinimizationOutcome()
    if not battery:
        return outcome
    frontier = CoverageFrontier(component)
    results = run_sharded(component, battery, executor=executor,
                          max_workers=max_workers, chunk_size=chunk_size,
                          collect_modes=True)
    outcome.evaluations = len(results)
    contributions: List[Set[CoverageItem]] = [
        _contribution(frontier, result) for result in results]
    target: Set[CoverageItem] = set()
    for items in contributions:
        target |= items
    outcome.covered_items = len(target)

    covered: Set[CoverageItem] = set()
    remaining = list(range(len(battery)))
    kept_indices: List[int] = []
    while covered != target:
        best_index = None
        best_marginal = 0
        for index in remaining:
            marginal = len(contributions[index] - covered)
            if marginal > best_marginal:
                best_index, best_marginal = index, marginal
        if best_index is None:  # nothing adds anything anymore
            break
        kept_indices.append(best_index)
        covered |= contributions[best_index]
        remaining.remove(best_index)

    kept_set = set(kept_indices)
    outcome.kept = [battery[index] for index in sorted(kept_indices)]
    outcome.dropped = [battery[index].name for index in range(len(battery))
                       if index not in kept_set]
    return outcome
