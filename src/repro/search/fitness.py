"""Coverage-frontier fitness for the scenario search.

The search does not optimise a scalar objective; it chases a *frontier*:
the set of declared modes and mode transitions (over every MTD and STD in
the hierarchy, via :func:`repro.analysis.mode_analysis.machine_inventory`)
that no evaluated scenario has exercised yet, plus the numeric value ranges
the boundary ports have seen.  A scenario's fitness is the :class:`
CoverageGain` it contributes *relative to everything absorbed before it* --
per-scenario attribution in evaluation order, so the corpus keeps exactly
the scenarios that earned coverage and culls the rest.

Observation semantics are shared with batch reporting -- histories fold
through :func:`repro.scenarios.report.fold_mode_history` (post-step
histories are seeded with the machine's declared initial mode; transitions
are distinct mode-change pairs), so frontier accounting always agrees with
the :class:`~repro.scenarios.report.BatchReport` the search aggregates
round by round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.mode_analysis import machine_inventory
from ..core.components import Component
from ..core.values import is_absent
from ..scenarios.report import fold_mode_history

#: One frontier item: ``(machine_path, mode_name)`` or
#: ``(machine_path, (source, target))``.
ModeItem = Tuple[str, str]
TransitionItem = Tuple[str, Tuple[str, str]]


@dataclass(frozen=True)
class CoverageGain:
    """What one scenario added to the frontier when it was absorbed."""

    new_modes: Tuple[ModeItem, ...] = ()
    new_transitions: Tuple[TransitionItem, ...] = ()
    port_novelty: float = 0.0

    def earned(self) -> bool:
        """Did the scenario extend the frontier at all?"""
        return bool(self.new_modes or self.new_transitions
                    or self.port_novelty > 0.0)

    def score(self) -> float:
        """Scalar ranking used to order corpus entries: transitions are the
        search target, modes are stepping stones, port novelty is a
        tie-breaker that keeps range-exploring scenarios alive."""
        return (10.0 * len(self.new_transitions)
                + 4.0 * len(self.new_modes)
                + min(self.port_novelty, 1.0))


class CoverageFrontier:
    """The mutable coverage state a search run accumulates.

    Declared modes/transitions come from the machine inventory once, at
    construction; :meth:`absorb` folds in one scenario result and returns
    the per-scenario :class:`CoverageGain`.
    """

    def __init__(self, component: Component):
        self.component_name = component.name
        self._declared_modes: Dict[str, Set[str]] = {}
        self._declared_transitions: Dict[str, Set[Tuple[str, str]]] = {}
        self._initial: Dict[str, Optional[str]] = {}
        self.visited_modes: Dict[str, Set[str]] = {}
        self.taken_transitions: Dict[str, Set[Tuple[str, str]]] = {}
        self._port_extents: Dict[str, Tuple[float, float]] = {}
        for info in machine_inventory(component):
            self._declared_modes[info.path] = set(info.modes)
            # like ModeCoverage: self-loops cannot be observed from a state
            # sequence, coverage is over distinct (source, target) pairs
            self._declared_transitions[info.path] = {
                pair for pair in info.transitions if pair[0] != pair[1]}
            self._initial[info.path] = info.initial
            self.visited_modes[info.path] = set()
            self.taken_transitions[info.path] = set()

    # -- observation -------------------------------------------------------
    def observed(self, result: Any) -> Dict[str, Tuple[Set[str],
                                                       Set[Tuple[str, str]]]]:
        """The (modes, transition pairs) one result exercised, per machine.

        Failed results observe nothing.  Results carrying per-machine
        ``mode_paths`` histories (``collect_modes=True`` runs) contribute to
        every machine; plain traces contribute their root ``mode_history``
        to the root machine only.
        """
        observed: Dict[str, Tuple[Set[str], Set[Tuple[str, str]]]] = {}
        if getattr(result, "error", None) is not None:
            return observed
        histories: Dict[str, Sequence[Any]] = {}
        mode_paths = getattr(result, "mode_paths", None)
        trace = getattr(result, "trace", None)
        if mode_paths:
            histories = dict(mode_paths)
        elif trace is not None and trace.mode_history:
            histories = {self.component_name: trace.mode_history}
        for path, history in histories.items():
            if path not in self._declared_modes:
                continue
            modes, pairs = fold_mode_history(history, self._initial[path])
            observed[path] = (modes & self._declared_modes[path],
                              pairs & self._declared_transitions[path])
        return observed

    def _range_novelty(self, result: Any, commit: bool) -> float:
        """Numeric range extension over the boundary ports of one trace.

        Each port contributes the relative amount by which the trace pushed
        the known [min, max] envelope outward (a first observation of a port
        counts as one unit) -- a small, bounded reward that keeps scenarios
        exploring new value territory alive even when they take no new
        transition.
        """
        trace = getattr(result, "trace", None)
        if trace is None:
            return 0.0
        novelty = 0.0
        extents = self._port_extents
        for pool in (trace.outputs, trace.inputs):
            for name, stream in pool.items():
                numeric = [value for value in stream
                           if not is_absent(value)
                           and isinstance(value, (int, float))
                           and not isinstance(value, bool)]
                if not numeric:
                    continue
                low, high = min(numeric), max(numeric)
                if name not in extents:
                    novelty += 1.0
                    if commit:
                        extents[name] = (low, high)
                    continue
                known_low, known_high = extents[name]
                span = max(known_high - known_low, 1.0)
                if low < known_low:
                    novelty += min((known_low - low) / span, 1.0)
                if high > known_high:
                    novelty += min((high - known_high) / span, 1.0)
                if commit and (low < known_low or high > known_high):
                    extents[name] = (min(low, known_low),
                                     max(high, known_high))
        return novelty

    def _gain(self, result: Any, commit: bool) -> CoverageGain:
        new_modes: List[ModeItem] = []
        new_transitions: List[TransitionItem] = []
        observed = self.observed(result)
        for path in sorted(observed):
            modes, pairs = observed[path]
            fresh_modes = sorted(modes - self.visited_modes[path])
            fresh_pairs = sorted(pairs - self.taken_transitions[path])
            new_modes.extend((path, mode) for mode in fresh_modes)
            new_transitions.extend((path, pair) for pair in fresh_pairs)
            if commit:
                self.visited_modes[path] |= modes
                self.taken_transitions[path] |= pairs
        novelty = self._range_novelty(result, commit)
        return CoverageGain(tuple(new_modes), tuple(new_transitions), novelty)

    def peek(self, result: Any) -> CoverageGain:
        """The gain the result *would* contribute, without committing it."""
        return self._gain(result, commit=False)

    def absorb(self, result: Any) -> CoverageGain:
        """Commit one result to the frontier and return its attribution."""
        return self._gain(result, commit=True)

    # -- queries -----------------------------------------------------------
    def untaken_transitions(self) -> List[TransitionItem]:
        """Every declared transition no scenario has taken yet (sorted)."""
        missing: List[TransitionItem] = []
        for path in sorted(self._declared_transitions):
            for pair in sorted(self._declared_transitions[path]
                               - self.taken_transitions[path]):
                missing.append((path, pair))
        return missing

    def unvisited_modes(self) -> List[ModeItem]:
        missing: List[ModeItem] = []
        for path in sorted(self._declared_modes):
            for mode in sorted(self._declared_modes[path]
                               - self.visited_modes[path]):
                missing.append((path, mode))
        return missing

    def transitions_complete(self) -> bool:
        """The search's primary stopping criterion."""
        return not self.untaken_transitions()

    def mode_coverage(self) -> float:
        declared = sum(len(modes) for modes in self._declared_modes.values())
        if not declared:
            return 1.0
        visited = sum(len(self.visited_modes[path]
                          & self._declared_modes[path])
                      for path in self._declared_modes)
        return visited / declared

    def transition_coverage(self) -> float:
        declared = sum(len(pairs)
                       for pairs in self._declared_transitions.values())
        if not declared:
            return 1.0
        taken = sum(len(self.taken_transitions[path]
                        & self._declared_transitions[path])
                    for path in self._declared_transitions)
        return taken / declared
