"""Coverage-guided scenario search: feedback-driven exploration.

The self-driving layer above :mod:`repro.scenarios`: where a
:class:`~repro.scenarios.report.BatchReport` merely *reports* the mode
transitions a battery missed, this subsystem mutates and breeds scenarios
until the untaken-transition list is empty (or a budget runs out):

* :mod:`repro.search.mutation` -- typed mutation/crossover operators over
  scenario stimuli and the generator parameter space, driven by one seeded
  ``random.Random``,
* :mod:`repro.search.fitness` -- coverage-frontier scoring with
  per-scenario gain attribution,
* :mod:`repro.search.loop` -- the generational driver on top of the
  sharded runner, with stopping criteria and a deterministic
  :class:`SearchReport` (JSON export),
* :mod:`repro.search.minimize` -- greedy battery minimization of the final
  corpus.
"""

from .fitness import CoverageFrontier, CoverageGain
from .loop import (CorpusEntry, RoundStats, SearchConfig, SearchReport,
                   search_coverage)
from .minimize import MinimizationOutcome, minimize_battery
from .mutation import (DEFAULT_MUTATORS, MutationContext, Mutator,
                       PerturbModeSequence, PerturbRamp, PerturbScalar,
                       PerturbSineWave, PerturbSquareWave, PerturbStepChange,
                       ReseedGenerator, RetargetPort, ToggleFaultInjector,
                       crossover_scenarios, exploration_scenario,
                       mutate_scenario)

__all__ = [
    "CorpusEntry", "CoverageFrontier", "CoverageGain", "DEFAULT_MUTATORS",
    "MinimizationOutcome", "MutationContext", "Mutator",
    "PerturbModeSequence", "PerturbRamp", "PerturbScalar", "PerturbSineWave",
    "PerturbSquareWave", "PerturbStepChange", "ReseedGenerator",
    "RetargetPort", "RoundStats", "SearchConfig", "SearchReport",
    "ToggleFaultInjector", "crossover_scenarios", "exploration_scenario",
    "minimize_battery", "mutate_scenario", "search_coverage",
]
