"""The generational coverage-search driver.

Closes the loop that PR 2 left open: a
:class:`~repro.scenarios.report.BatchReport` *reports* untaken mode
transitions, this module *acts* on them.  Each round

1. evaluates the pending candidate battery through the existing sharded
   executor (:func:`repro.scenarios.runner.run_sharded`, any executor:
   serial, thread or process pool),
2. folds each result into the cumulative :class:`BatchReport`
   (:meth:`BatchReport.observe_result` -- no re-scan of prior traces;
   :meth:`BatchReport.merge` aggregates the same way across report
   objects, e.g. shard reports from other hosts) and attributes coverage
   gains per scenario through the
   :class:`~repro.search.fitness.CoverageFrontier`,
3. keeps the scenarios that earned coverage in the corpus and breeds the
   next generation from them (typed mutation, segment crossover,
   guard-vocabulary exploration -- :mod:`repro.search.mutation`),

until the untaken-transition list is empty or a round / evaluation /
wall-clock budget runs out.  The finished corpus is greedily minimized
(:mod:`repro.search.minimize`) and everything is summarised in a
:class:`SearchReport` whose JSON export is **deterministic**: for a fixed
seed the corpus, the round trajectory and the exported JSON are
byte-identical across runs and across executors (traces are
executor-independent by the PR 2 guarantee, and every random decision draws
from one seeded ``random.Random``).
"""

from __future__ import annotations

import itertools
import json
import random
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.mode_analysis import machine_inventory
from ..core.components import Component
from ..core.errors import SimulationError
from ..core.expr_eval import ExpressionEvaluator
from ..core.values import is_present
from ..obs.context import current_events, current_registry, maybe_span
from ..scenarios.generators import Scenario
from ..scenarios.report import BatchReport
from ..scenarios.runner import run_sharded
from .fitness import CoverageFrontier, CoverageGain
from .minimize import minimize_battery
from .mutation import (DEFAULT_MUTATORS, MutationContext, Mutator,
                       append_witness, crossover_scenarios,
                       exploration_scenario, mutate_scenario)


@dataclass
class SearchConfig:
    """Tuning knobs and budgets of one search run."""

    seed: int = 0
    max_rounds: int = 12                    #: round budget (incl. seed round)
    population: int = 16                    #: candidates bred per round
    corpus_cap: int = 24                    #: parent pool size (best-first)
    ticks: int = 40                         #: horizon of bred scenarios
    max_ticks: int = 240                    #: horizon-extension cap
    crossover_rate: float = 0.2
    exploration_rate: float = 0.2           #: fresh guard-vocabulary blood
    executor: str = "serial"
    max_workers: Optional[int] = None
    chunk_size: Optional[int] = None
    max_evaluations: Optional[int] = None   #: scenario-execution budget
    wall_clock_budget_s: Optional[float] = None
    max_stale_rounds: Optional[int] = None  #: stop after N gain-free rounds
    stop_on_full_transitions: bool = True
    minimize: bool = True                   #: greedy-minimize the corpus

    def validate(self) -> None:
        if self.max_rounds < 1:
            raise SimulationError("search needs a round budget >= 1")
        if self.population < 1:
            raise SimulationError("search population must be >= 1")
        if self.corpus_cap < 1:
            raise SimulationError("search corpus cap must be >= 1")
        if self.ticks < 1 or self.max_ticks < self.ticks:
            raise SimulationError(
                "search needs 1 <= ticks <= max_ticks "
                f"(got ticks={self.ticks}, max_ticks={self.max_ticks})")
        if not 0.0 <= self.crossover_rate <= 1.0 \
                or not 0.0 <= self.exploration_rate <= 1.0:
            raise SimulationError(
                "crossover/exploration rates must be in [0, 1]")


@dataclass
class CorpusEntry:
    """One scenario that earned coverage, with its attribution."""

    scenario: Scenario
    gain: CoverageGain
    round_index: int


@dataclass
class RoundStats:
    """The coverage trajectory entry of one search round."""

    index: int
    evaluated: int
    failed: int
    earned: int
    new_modes: int
    new_transitions: int
    mode_coverage: float
    transition_coverage: float
    corpus_size: int
    duration_s: float = 0.0  # excluded from the default (deterministic) JSON

    def to_json_dict(self, include_timing: bool = False) -> Dict[str, Any]:
        data = {
            "round": self.index,
            "evaluated": self.evaluated,
            "failed": self.failed,
            "earned": self.earned,
            "new_modes": self.new_modes,
            "new_transitions": self.new_transitions,
            "mode_coverage": self.mode_coverage,
            "transition_coverage": self.transition_coverage,
            "corpus_size": self.corpus_size,
        }
        if include_timing:
            data["duration_s"] = self.duration_s
        return data


def _spec_repr(spec: Any) -> str:
    """A run-stable description of one stimulus specification.

    Default reprs of plain callables (a valid stimulus kind) embed memory
    addresses, which would break the byte-identical JSON guarantee; they
    are scrubbed.
    """
    return re.sub(r"0x[0-9a-fA-F]+", "0x..", repr(spec))


def _scenario_json(scenario: Scenario) -> Dict[str, Any]:
    return {
        "name": scenario.name,
        "ticks": scenario.ticks,
        "stimuli": {port: _spec_repr(scenario.stimuli[port])
                    for port in sorted(scenario.stimuli)},
    }


@dataclass
class SearchReport:
    """Everything one search run produced.

    ``corpus`` is the final (minimized, unless disabled) battery;
    ``batch_report`` aggregates *every* evaluated scenario, so its coverage
    equals the frontier's.  :meth:`to_json` is deterministic for a fixed
    seed -- wall-clock durations live only on the Python objects.
    """

    component_name: str
    seed: int
    stop_reason: str
    evaluations: int
    rounds: List[RoundStats]
    corpus: List[Scenario]
    dropped: List[str]
    minimized: bool
    frontier: CoverageFrontier
    batch_report: BatchReport
    duration_s: float = 0.0

    # -- queries -----------------------------------------------------------
    def mode_coverage(self) -> float:
        return self.frontier.mode_coverage()

    def transition_coverage(self) -> float:
        return self.frontier.transition_coverage()

    def untaken_transitions(self) -> List[Tuple[str, Tuple[str, str]]]:
        return self.frontier.untaken_transitions()

    def corpus_names(self) -> List[str]:
        return [scenario.name for scenario in self.corpus]

    # -- presentation ------------------------------------------------------
    def format_summary(self) -> str:
        lines = [f"coverage search on {self.component_name!r}: "
                 f"{self.stop_reason} after {len(self.rounds)} rounds, "
                 f"{self.evaluations} scenario executions "
                 f"({self.duration_s:.3f}s)",
                 f"  coverage: {100.0 * self.mode_coverage():.0f}% modes, "
                 f"{100.0 * self.transition_coverage():.0f}% transitions"]
        for stats in self.rounds:
            lines.append(
                f"    round {stats.index}: {stats.evaluated} evaluated, "
                f"{stats.earned} earned, +{stats.new_transitions} "
                f"transitions -> "
                f"{100.0 * stats.transition_coverage:.0f}% "
                f"({stats.duration_s:.3f}s)")
        untaken = self.untaken_transitions()
        if untaken:
            lines.append("  still untaken:")
            for path, (source, target) in untaken:
                lines.append(f"    {path}: {source} -> {target}")
        corpus_kind = "minimized corpus" if self.minimized else "corpus"
        lines.append(f"  {corpus_kind} ({len(self.corpus)} scenarios, "
                     f"{len(self.dropped)} dropped):")
        for scenario in self.corpus:
            lines.append(f"    {scenario.name} ({scenario.ticks} ticks)")
        return "\n".join(lines)

    # -- export ------------------------------------------------------------
    def to_json_dict(self, include_timing: bool = False) -> Dict[str, Any]:
        """The JSON export.

        Deterministic by default: byte-identical across runs and executors
        for a fixed seed.  ``include_timing=True`` opts into wall-clock
        data -- total and per-round ``duration_s`` -- trading determinism
        for profiling detail.
        """
        data = {
            "component": self.component_name,
            "seed": self.seed,
            "stop_reason": self.stop_reason,
            "evaluations": self.evaluations,
            "rounds": [stats.to_json_dict(include_timing)
                       for stats in self.rounds],
            "coverage": {
                "overall_mode_coverage": self.mode_coverage(),
                "overall_transition_coverage": self.transition_coverage(),
                "untaken_transitions": [
                    {"machine": path, "source": source, "target": target}
                    for path, (source, target) in self.untaken_transitions()],
                "machines": [self.batch_report.coverage[path].to_json_dict()
                             for path in sorted(self.batch_report.coverage)],
            },
            "corpus": {
                "minimized": self.minimized,
                "scenarios": [_scenario_json(scenario)
                              for scenario in self.corpus],
                "dropped": list(self.dropped),
            },
        }
        if include_timing:
            data["timing"] = {"total_duration_s": self.duration_s}
        return data

    def to_json(self, indent: int = 2, include_timing: bool = False) -> str:
        return json.dumps(self.to_json_dict(include_timing), indent=indent,
                          sort_keys=True, default=str)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())


class _TransitionTargeter:
    """Directed candidate generation: drive one untaken transition.

    For an untaken ``source -> target`` whose guard ranges over root input
    ports only, and a corpus scenario known to *end* in ``source``, the
    targeter solves the guard over the vocabulary pools (a finite witness
    enumeration, exactly like the global-mode-system product does) and
    appends the witness valuation as a new stimulus phase.  This is the
    model-based test-sequence-generation step: the frontier names the goal,
    the guard names the inputs, the corpus supplies the prefix that reaches
    the source mode.
    """

    _WITNESS_LIMIT = 4
    _COMBO_CAP = 1024

    def __init__(self, component: Component, context: MutationContext):
        self._evaluator = ExpressionEvaluator()
        self._context = context
        self._root_ports = set(component.input_names())
        self._guards: Dict[Tuple[str, Tuple[str, str]], List[Any]] = {}
        for info in machine_inventory(component):
            for transition in info.component.transitions():
                key = (info.path, (transition.source, transition.target))
                self._guards.setdefault(key, []).append(transition.guard)
        self._witnesses: Dict[Tuple[str, Tuple[str, str]],
                              List[Dict[str, Any]]] = {}

    def witnesses(self, path: str,
                  pair: Tuple[str, str]) -> List[Dict[str, Any]]:
        """Input valuations (over root ports) that satisfy some guard of
        the transition, at most ``_WITNESS_LIMIT`` per guard; cached."""
        key = (path, pair)
        if key in self._witnesses:
            return self._witnesses[key]
        found: List[Dict[str, Any]] = []
        for guard in self._guards.get(key, ()):
            variables = sorted(set(guard.variables()))
            if not variables or not set(variables) <= self._root_ports:
                continue  # constant or non-boundary guard: cannot target
            pools = [self._context.pool(name) for name in variables]
            for index, combination in enumerate(
                    itertools.product(*pools)):
                if index >= self._COMBO_CAP \
                        or len(found) >= self._WITNESS_LIMIT:
                    break
                environment = dict(zip(variables, combination))
                try:
                    value = self._evaluator.evaluate(guard, environment)
                except Exception:  # noqa: BLE001 - witness probing only
                    continue
                if is_present(value) and bool(value):
                    found.append(environment)
        self._witnesses[key] = found
        return found

    def candidates(self, frontier: CoverageFrontier,
                   visitors: Dict[Tuple[str, str], Scenario],
                   rng: random.Random, round_index: int,
                   limit: int) -> List[Scenario]:
        """One extended scenario per targetable untaken transition."""
        targeted: List[Scenario] = []
        for path, pair in frontier.untaken_transitions():
            if len(targeted) >= limit:
                break
            parent = visitors.get((path, pair[0]))
            if parent is None:
                continue
            witnesses = self.witnesses(path, pair)
            if not witnesses:
                continue
            witness = witnesses[rng.randrange(len(witnesses))]
            targeted.append(append_witness(
                parent, witness, dwell=rng.randint(2, 4),
                name=f"search-r{round_index}-t{len(targeted)}"))
        return targeted


def _final_modes(result: Any) -> Dict[str, Any]:
    """The last observed mode per machine path of one successful result."""
    finals: Dict[str, Any] = {}
    mode_paths = getattr(result, "mode_paths", None)
    if getattr(result, "error", None) is not None or not mode_paths:
        return finals
    for path, history in mode_paths.items():
        for mode in reversed(history):
            if mode is not None:
                finals[path] = mode
                break
    return finals


def _next_generation(parents: Sequence[Scenario], ports: Sequence[str],
                     rng: random.Random, context: MutationContext,
                     config: SearchConfig, round_index: int,
                     mutators: Sequence[Mutator],
                     count: int) -> List[Scenario]:
    """Breed one round's candidate battery from the parent pool."""
    candidates: List[Scenario] = []
    for index in range(count):
        name = f"search-r{round_index}-c{index}"
        roll = rng.random()
        if len(parents) >= 2 and roll < config.crossover_rate:
            first, second = rng.sample(list(parents), 2)
            candidates.append(crossover_scenarios(first, second, rng, name))
        elif parents and roll < 1.0 - config.exploration_rate:
            parent = rng.choice(list(parents))
            candidates.append(mutate_scenario(parent, rng, context, name,
                                              mutators))
        else:
            candidates.append(exploration_scenario(ports, rng, context,
                                                   name))
    return candidates


def search_coverage(component: Component,
                    seed_battery: Sequence[Scenario] = (),
                    config: Optional[SearchConfig] = None,
                    mutators: Sequence[Mutator] = DEFAULT_MUTATORS
                    ) -> SearchReport:
    """Run the feedback-driven coverage search against *component*.

    ``seed_battery`` is evaluated as round 0 (a deliberately weak battery
    is fine -- the search exists to grow it); when empty, round 0 is a
    fresh exploration battery bred from the guard vocabulary.
    """
    config = config or SearchConfig()
    config.validate()
    ports = component.input_names()
    rng = random.Random(config.seed)
    context = MutationContext.for_component(component,
                                            default_ticks=config.ticks,
                                            max_ticks=config.max_ticks)
    frontier = CoverageFrontier(component)
    targeter = _TransitionTargeter(component, context)
    visitors: Dict[Tuple[str, str], Scenario] = {}
    batch_report = BatchReport.for_component(component)
    corpus: List[CorpusEntry] = []
    rounds: List[RoundStats] = []
    evaluations = 0
    stale_rounds = 0
    stop_reason = "round-budget"
    started = time.perf_counter()
    deadline = (started + config.wall_clock_budget_s
                if config.wall_clock_budget_s is not None else None)

    pending: List[Scenario] = list(seed_battery)
    if not pending:
        pending = [exploration_scenario(ports, rng, context,
                                        f"search-r0-c{index}")
                   for index in range(config.population)]

    for round_index in range(config.max_rounds):
        if config.max_evaluations is not None:
            headroom = config.max_evaluations - evaluations
            if headroom <= 0:
                stop_reason = "evaluation-budget"
                break
            pending = pending[:headroom]
        round_started = time.perf_counter()
        with maybe_span("search.round", round=round_index,
                        candidates=len(pending)):
            results = run_sharded(component, pending,
                                  executor=config.executor,
                                  max_workers=config.max_workers,
                                  chunk_size=config.chunk_size,
                                  collect_modes=True)
        evaluations += len(results)
        registry = current_registry()
        if registry is not None:
            registry.counter("search.rounds").inc()
            registry.counter("search.evaluations").inc(len(results))
        for result in results:  # incremental: no re-scan of prior rounds
            batch_report.observe_result(result)

        by_name = {scenario.name: scenario for scenario in pending}
        earned = failed = new_modes = new_transitions = 0
        for result in results:
            if not result.ok:
                failed += 1
            gain = frontier.absorb(result)
            if gain.earned():
                corpus.append(CorpusEntry(by_name[result.name], gain,
                                          round_index))
                earned += 1
            new_modes += len(gain.new_modes)
            new_transitions += len(gain.new_transitions)
            # remember which scenario *ends* in which mode: the prefixes
            # the transition targeter extends with guard witnesses
            for path, mode in sorted(_final_modes(result).items()):
                visitors.setdefault((path, mode), by_name[result.name])
        stats = RoundStats(
            index=round_index, evaluated=len(results), failed=failed,
            earned=earned, new_modes=new_modes,
            new_transitions=new_transitions,
            mode_coverage=frontier.mode_coverage(),
            transition_coverage=frontier.transition_coverage(),
            corpus_size=len(corpus),
            duration_s=time.perf_counter() - round_started)
        rounds.append(stats)
        events = current_events()
        if events is not None:
            # the deterministic projection of the round (timing excluded):
            # byte-equal across executors for a fixed seed, like the report
            events.emit("search_round", **stats.to_json_dict())
        stale_rounds = 0 if (new_modes or new_transitions) \
            else stale_rounds + 1

        if config.stop_on_full_transitions and frontier.transitions_complete():
            stop_reason = "transitions-covered"
            break
        if config.max_evaluations is not None \
                and evaluations >= config.max_evaluations:
            stop_reason = "evaluation-budget"
            break
        if deadline is not None and time.perf_counter() >= deadline:
            stop_reason = "wall-clock-budget"
            break
        if config.max_stale_rounds is not None \
                and stale_rounds >= config.max_stale_rounds:
            stop_reason = "stalled"
            break
        if round_index + 1 >= config.max_rounds:
            stop_reason = "round-budget"
            break
        parents = [entry.scenario for entry in
                   sorted(corpus, key=lambda entry: -entry.gain.score())
                   ][:config.corpus_cap]
        pending = targeter.candidates(frontier, visitors, rng,
                                      round_index + 1,
                                      limit=config.population)
        pending.extend(_next_generation(
            parents, ports, rng, context, config, round_index + 1, mutators,
            count=config.population - len(pending)))

    final_corpus = [entry.scenario for entry in corpus]
    dropped: List[str] = []
    minimized = False
    if config.minimize and final_corpus:
        outcome = minimize_battery(component, final_corpus,
                                   executor=config.executor,
                                   max_workers=config.max_workers,
                                   chunk_size=config.chunk_size)
        evaluations += outcome.evaluations
        final_corpus = outcome.kept
        dropped = outcome.dropped
        minimized = True

    return SearchReport(
        component_name=component.name, seed=config.seed,
        stop_reason=stop_reason, evaluations=evaluations, rounds=rounds,
        corpus=final_corpus, dropped=dropped, minimized=minimized,
        frontier=frontier, batch_report=batch_report,
        duration_s=time.perf_counter() - started)
