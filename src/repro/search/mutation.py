"""Typed mutation and crossover operators over scenario stimuli.

The search explores the stimulus space through the *generator parameter
space*, not raw value lists: every operator inspects the concrete
:class:`~repro.scenarios.generators.StimulusGenerator` type it is handed
and produces a new, structurally valid generator of the same family
(perturbed :class:`Ramp` slopes, rescaled :class:`SquareWave` periods,
spliced :class:`ModeSequence` segments, re-seeded
:class:`SeededGenerator` streams, toggled fault injectors) or retargets the
port with a fresh guard-vocabulary mode sequence.

Every draw comes from one explicit ``random.Random`` handed in by the
caller, so a search run is a pure function of its seed: the same seed
produces byte-identical mutation decisions, scenario names and stimuli
reprs on every host and executor.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.mode_analysis import guard_vocabulary
from ..core.components import Component
from ..core.errors import SimulationError
from ..core.values import ABSENT
from ..scenarios.generators import (Constant, Dropout, ModeSequence,
                                    OutOfRange, Ramp, Scenario,
                                    SeededGenerator, SineWave, SquareWave,
                                    StepChange, StuckAt, sample_spec)

#: Seed space for re-seeding operators (well inside C-long range so pickled
#: generators behave identically everywhere).
_SEED_SPACE = 1 << 30

#: Fallback value pool for ports no guard ever mentions.
_DEFAULT_POOL: Tuple[Any, ...] = (0.0, 1.0)


@dataclass
class MutationContext:
    """Shared knowledge the operators mutate against.

    ``value_pools`` maps input-port names to interesting stimulus values --
    typically the guard boundary vocabulary of the model
    (:func:`repro.analysis.mode_analysis.guard_vocabulary`), which is what
    steers mutations toward untaken guard outcomes.  ``max_ticks`` caps
    horizon extension so mutated scenarios stay cheap to evaluate.
    """

    value_pools: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    default_ticks: int = 40
    max_ticks: int = 240

    @classmethod
    def for_component(cls, component: Component, default_ticks: int = 40,
                      max_ticks: int = 240) -> "MutationContext":
        return cls(value_pools=guard_vocabulary(component),
                   default_ticks=default_ticks, max_ticks=max_ticks)

    def pool(self, port: str) -> List[Any]:
        values = list(self.value_pools.get(port, ()))
        return values if values else list(_DEFAULT_POOL)


class Mutator:
    """One typed stimulus operator: test applicability, then rewrite."""

    name = "mutator"

    def applies(self, spec: Any) -> bool:
        raise NotImplementedError

    def mutate(self, spec: Any, rng: random.Random, context: MutationContext,
               port: str) -> Any:
        raise NotImplementedError


class PerturbRamp(Mutator):
    """Scale a ramp's slope and re-anchor its start in the value pool."""

    name = "perturb-ramp"

    def applies(self, spec: Any) -> bool:
        return isinstance(spec, Ramp)

    def mutate(self, spec: Ramp, rng: random.Random,
               context: MutationContext, port: str) -> Ramp:
        factor = rng.choice((-2.0, -0.5, 0.25, 0.5, 2.0, 4.0))
        start = spec.start
        if rng.random() < 0.5:
            anchor = rng.choice(context.pool(port))
            if isinstance(anchor, (int, float)) \
                    and not isinstance(anchor, bool):
                start = float(anchor)
        slope = spec.slope * factor if spec.slope else factor
        return Ramp(start=start, slope=slope, low=spec.low, high=spec.high)


class PerturbSquareWave(Mutator):
    """Rescale a square wave's period and jitter its duty cycle/phase."""

    name = "perturb-square-wave"

    def applies(self, spec: Any) -> bool:
        return isinstance(spec, SquareWave)

    def mutate(self, spec: SquareWave, rng: random.Random,
               context: MutationContext, port: str) -> SquareWave:
        period = max(1, int(spec.period * rng.choice((0.5, 2.0, 3.0))))
        duty = min(1.0, max(0.0, spec.duty + rng.choice((-0.25, 0.0, 0.25))))
        phase = rng.randrange(period)
        return SquareWave(period=period, low=spec.low, high=spec.high,
                          duty=duty, phase=phase)


class PerturbStepChange(Mutator):
    """Move a step change's switch tick and re-draw its levels."""

    name = "perturb-step"

    def applies(self, spec: Any) -> bool:
        return isinstance(spec, StepChange)

    def mutate(self, spec: StepChange, rng: random.Random,
               context: MutationContext, port: str) -> StepChange:
        pool = context.pool(port)
        at = rng.randrange(max(2, context.default_ticks))
        before = spec.before if rng.random() < 0.5 else rng.choice(pool)
        after = spec.after if rng.random() < 0.5 else rng.choice(pool)
        return StepChange(at=at, before=before, after=after)


class PerturbModeSequence(Mutator):
    """Re-time, re-value, extend, shrink or shuffle a mode sequence."""

    name = "perturb-mode-sequence"

    def applies(self, spec: Any) -> bool:
        return isinstance(spec, ModeSequence)

    def mutate(self, spec: ModeSequence, rng: random.Random,
               context: MutationContext, port: str) -> ModeSequence:
        segments = list(spec.segments)
        pool = context.pool(port)
        operation = rng.choice(("retime", "revalue", "append", "drop",
                                "swap"))
        index = rng.randrange(len(segments))
        if operation == "retime":
            value, _ = segments[index]
            segments[index] = (value, rng.randint(1, 8))
        elif operation == "revalue":
            _, duration = segments[index]
            segments[index] = (rng.choice(pool), duration)
        elif operation == "append":
            segments.append((rng.choice(pool), rng.randint(1, 8)))
        elif operation == "drop" and len(segments) > 1:
            segments.pop(index)
        else:  # swap (or drop on a single-segment sequence)
            other = rng.randrange(len(segments))
            segments[index], segments[other] = (segments[other],
                                                segments[index])
        return ModeSequence(segments, hold_last=spec.hold_last)


class ReseedGenerator(Mutator):
    """Re-seed any seeded generator, keeping all other parameters.

    The clone copies the generator's public parameters (including wrapped
    inner specifications) and rebuilds the RNG stream from the new seed, so
    the result is the same *kind* of stimulus exploring a different sample
    path.
    """

    name = "reseed"

    def applies(self, spec: Any) -> bool:
        return isinstance(spec, SeededGenerator)

    def mutate(self, spec: SeededGenerator, rng: random.Random,
               context: MutationContext, port: str) -> SeededGenerator:
        clone = copy.copy(spec)
        clone.seed = rng.randrange(_SEED_SPACE)
        clone._reset()
        return clone


class ToggleFaultInjector(Mutator):
    """Wrap a healthy stimulus in a fault injector, or heal a faulty one.

    Injector windows are drawn inside the scenario horizon, so (thanks to
    the constructor validation in :mod:`repro.scenarios.generators`) every
    injected fault actually fires.
    """

    name = "toggle-fault"

    def applies(self, spec: Any) -> bool:
        return True

    def mutate(self, spec: Any, rng: random.Random,
               context: MutationContext, port: str) -> Any:
        if isinstance(spec, (StuckAt, OutOfRange, Dropout)):
            return spec.inner  # heal: unwrap the injected fault
        horizon = max(4, context.default_ticks)
        kind = rng.choice(("stuck", "dropout", "spikes"))
        if kind == "stuck":
            from_tick = rng.randrange(horizon // 2)
            until = from_tick + rng.randint(1, horizon // 2)
            return StuckAt(spec, value=rng.choice(context.pool(port)),
                           from_tick=from_tick, until=until)
        if kind == "dropout":
            return Dropout(spec, seed=rng.randrange(_SEED_SPACE),
                           probability=rng.choice((0.05, 0.1, 0.25)))
        count = rng.randint(1, 3)
        at_ticks = sorted(rng.sample(range(horizon), count))
        return OutOfRange(spec, at_ticks=at_ticks,
                          value=rng.choice((1e9, -1e9)))


class RetargetPort(Mutator):
    """Replace any stimulus with a fresh guard-vocabulary mode sequence.

    This is the exploration workhorse: a piecewise-constant walk over the
    guard boundary values of the port, which is exactly the stimulus shape
    that drives threshold-guarded mode logic through new transitions.
    """

    name = "retarget"

    def applies(self, spec: Any) -> bool:
        return True

    def mutate(self, spec: Any, rng: random.Random,
               context: MutationContext, port: str) -> ModeSequence:
        pool = context.pool(port)
        segments = [(rng.choice(pool), rng.randint(1, 8))
                    for _ in range(rng.randint(2, 5))]
        return ModeSequence(segments)


class PerturbScalar(Mutator):
    """Replace a constant stimulus with another pool value."""

    name = "perturb-scalar"

    def applies(self, spec: Any) -> bool:
        return isinstance(spec, Constant) or (
            isinstance(spec, (int, float)) and not isinstance(spec, bool))

    def mutate(self, spec: Any, rng: random.Random,
               context: MutationContext, port: str) -> Any:
        value = rng.choice(context.pool(port))
        return Constant(value) if isinstance(spec, Constant) else value


class PerturbSineWave(Mutator):
    """Rescale a sine wave's amplitude/period and shift its offset."""

    name = "perturb-sine"

    def applies(self, spec: Any) -> bool:
        return isinstance(spec, SineWave)

    def mutate(self, spec: SineWave, rng: random.Random,
               context: MutationContext, port: str) -> SineWave:
        return SineWave(amplitude=spec.amplitude * rng.choice((0.5, 2.0)),
                        period=max(2.0, spec.period * rng.choice((0.5, 2.0))),
                        offset=spec.offset + rng.choice((-1.0, 0.0, 1.0)),
                        phase=spec.phase)


#: The default operator registry, in fixed order (determinism relies on a
#: stable registry: ``rng.choice`` over it must see the same candidates in
#: the same order on every run).
DEFAULT_MUTATORS: Tuple[Mutator, ...] = (
    PerturbRamp(), PerturbSquareWave(), PerturbStepChange(),
    PerturbModeSequence(), PerturbSineWave(), ReseedGenerator(),
    ToggleFaultInjector(), RetargetPort(), PerturbScalar(),
)


def mutate_scenario(scenario: Scenario, rng: random.Random,
                    context: MutationContext, name: str,
                    mutators: Sequence[Mutator] = DEFAULT_MUTATORS
                    ) -> Scenario:
    """Derive a new scenario by mutating 1-2 stimuli (and maybe the horizon).

    Ports are drawn from the sorted stimulus keys so the mutation sequence
    depends only on the RNG state, never on dict iteration order.  The
    operators see the *scenario's* horizon as ``default_ticks``, so
    injector windows and step ticks always land inside the ticks that
    actually run.
    """
    if not scenario.stimuli:
        raise SimulationError(
            f"cannot mutate scenario {scenario.name!r}: it has no stimuli")
    context = replace(context, default_ticks=scenario.ticks)
    stimuli: Dict[str, Any] = dict(scenario.stimuli)
    ports = sorted(stimuli)
    count = min(len(ports), rng.randint(1, 2))
    for port in rng.sample(ports, count):
        spec = stimuli[port]
        applicable = [mutator for mutator in mutators
                      if mutator.applies(spec)]
        if not applicable:
            continue
        mutator = rng.choice(applicable)
        stimuli[port] = mutator.mutate(spec, rng, context, port)
    ticks = scenario.ticks
    if rng.random() < 0.25:
        ticks = min(context.max_ticks, ticks + rng.choice((8, 16, 32)))
    return Scenario(name, stimuli, ticks)


def crossover_scenarios(first: Scenario, second: Scenario,
                        rng: random.Random, name: str) -> Scenario:
    """Recombine two scenarios port-wise, splicing mode sequences.

    Each port takes its stimulus from one parent; when both parents carry a
    :class:`ModeSequence` on the same port there is a chance the child gets
    a spliced sequence (a prefix of one parent's segments followed by a
    suffix of the other's) -- the segment-level crossover that chains two
    partially-successful drive profiles into one.
    """
    stimuli: Dict[str, Any] = {}
    for port in sorted(set(first.stimuli) | set(second.stimuli)):
        in_first, in_second = port in first.stimuli, port in second.stimuli
        if in_first and in_second:
            left, right = first.stimuli[port], second.stimuli[port]
            if isinstance(left, ModeSequence) \
                    and isinstance(right, ModeSequence) \
                    and rng.random() < 0.5:
                cut_left = rng.randint(1, len(left.segments))
                cut_right = rng.randrange(len(right.segments))
                stimuli[port] = ModeSequence(
                    list(left.segments[:cut_left])
                    + list(right.segments[cut_right:]),
                    hold_last=right.hold_last)
            else:
                stimuli[port] = left if rng.random() < 0.5 else right
        else:
            stimuli[port] = first.stimuli[port] if in_first \
                else second.stimuli[port]
    ticks = max(first.ticks, second.ticks) if rng.random() < 0.5 \
        else min(first.ticks, second.ticks)
    return Scenario(name, stimuli, ticks)


def exploration_scenario(ports: Sequence[str], rng: random.Random,
                         context: MutationContext, name: str) -> Scenario:
    """A fresh scenario: one guard-vocabulary mode sequence per input port."""
    if not ports:
        raise SimulationError(
            "cannot build an exploration scenario for a component without "
            "input ports")
    retarget = RetargetPort()
    stimuli = {port: retarget.mutate(None, rng, context, port)
               for port in sorted(ports)}
    return Scenario(name, stimuli, context.default_ticks)


def _as_mode_sequence(spec: Any, ticks: int) -> ModeSequence:
    """Rewrite any stimulus as an equivalent piecewise-constant sequence.

    Mode sequences keep their segments; everything else is sampled over the
    scenario horizon and run-length compressed.  This is what lets the
    targeted extension *append* to an arbitrary stimulus.
    """
    if isinstance(spec, ModeSequence):
        return ModeSequence(list(spec.segments), hold_last=spec.hold_last)
    if isinstance(spec, Constant):
        return ModeSequence([(spec.value, max(1, ticks))])
    segments: List[Tuple[Any, int]] = []
    for tick in range(max(1, ticks)):
        value = sample_spec(spec, tick)
        if segments and segments[-1][0] == value:
            segments[-1] = (value, segments[-1][1] + 1)
        else:
            segments.append((value, 1))
    return ModeSequence(segments)


def append_witness(parent: Scenario, witness: Mapping[str, Any],
                   dwell: int, name: str,
                   max_ticks: Optional[int] = None) -> Scenario:
    """Extend *parent* with a guard-witness phase: the directed mutation.

    The parent's stimuli are replayed unchanged for its whole horizon
    (including trailing absence: a ``hold_last=False`` tail stays absent,
    and a witness port the parent never drove stays absent for the whole
    prefix), then every port named by *witness* holds its witness value for
    *dwell* ticks.  Run against a parent that ends in a transition's source
    mode, the extension drives exactly that guard true -- the feedback step
    that turns coverage reporting into coverage search.
    """
    if dwell < 1:
        raise SimulationError("witness dwell must be >= 1 tick")
    stimuli: Dict[str, Any] = dict(parent.stimuli)
    for port in sorted(witness):
        if port in stimuli:
            sequence = _as_mode_sequence(stimuli[port], parent.ticks)
            # clip to the parent horizon: segments beyond it were never
            # simulated, and leaving them in would push the witness phase
            # past the child's tick range (it would silently never fire)
            segments: List[Tuple[Any, int]] = []
            remaining = parent.ticks
            for value, duration in sequence.segments:
                if remaining <= 0:
                    break
                segments.append((value, min(duration, remaining)))
                remaining -= duration
            if remaining > 0:
                if sequence.hold_last:  # the held tail becomes explicit
                    value = segments[-1][0]
                    segments[-1] = (value, segments[-1][1] + remaining)
                else:  # a non-holding sequence went absent: keep it absent
                    segments.append((ABSENT, remaining))
        else:  # the parent never drove this port: absent until the witness
            segments = [(ABSENT, max(1, parent.ticks))]
        segments.append((witness[port], dwell))
        stimuli[port] = ModeSequence(segments)
    ticks = parent.ticks + dwell
    if max_ticks is not None:
        ticks = min(ticks, max_ticks)
    return Scenario(name, stimuli, max(ticks, 1))
