"""Hierarchical causality analysis (paper Sec. 3.2).

"In the AutoMoDe tool prototype, instantaneous communication primitives are
accompanied by a causality check for detecting instantaneous loops."  The
single-diagram check lives on :class:`CompositeComponent.evaluation_order`;
this module provides the whole-hierarchy analysis: it walks every composite
in a model, collects instantaneous cycles, and produces a report that the
FDA validation and the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..core.components import Component, CompositeComponent
from ..core.errors import CausalityError
from ..core.validation import Severity, ValidationReport


@dataclass
class CausalityResult:
    """Result of analysing one composite component."""

    component: str
    order: List[str] = field(default_factory=list)
    cycle: List[str] = field(default_factory=list)

    @property
    def is_causal(self) -> bool:
        return not self.cycle


@dataclass
class CausalityAnalysis:
    """Aggregated causality results for a whole component hierarchy."""

    root: str
    results: List[CausalityResult] = field(default_factory=list)

    @property
    def is_causal(self) -> bool:
        return all(result.is_causal for result in self.results)

    def cycles(self) -> List[CausalityResult]:
        return [result for result in self.results if not result.is_causal]

    def composite_count(self) -> int:
        return len(self.results)

    def to_report(self) -> ValidationReport:
        report = ValidationReport(f"causality of {self.root!r}")
        for result in self.results:
            if result.is_causal:
                report.info("causality",
                            f"{result.component!r}: evaluation order "
                            f"{' -> '.join(result.order) if result.order else '(empty)'}",
                            element=result.component)
            else:
                report.error("causality",
                             f"{result.component!r}: instantaneous loop through "
                             f"{', '.join(result.cycle)}",
                             element=result.component,
                             suggestion="insert a unit delay or an SSD-level "
                                        "(delayed) channel into the loop")
        return report


def analyze_causality(root: Component) -> CausalityAnalysis:
    """Analyse every composite in the hierarchy below *root*."""
    analysis = CausalityAnalysis(root=root.name)
    if not isinstance(root, CompositeComponent):
        return analysis
    for path, component in root.walk():
        if not isinstance(component, CompositeComponent):
            continue
        result = CausalityResult(component=path)
        try:
            result.order = component.evaluation_order()
        except CausalityError:
            result.cycle = _cycle_members(component)
        analysis.results.append(result)
    return analysis


def assert_causal(root: Component) -> CausalityAnalysis:
    """Run the analysis and raise :class:`CausalityError` on any cycle."""
    analysis = analyze_causality(root)
    cycles = analysis.cycles()
    if cycles:
        details = "; ".join(
            f"{result.component}: {', '.join(result.cycle)}" for result in cycles)
        raise CausalityError(f"instantaneous loops detected: {details}")
    return analysis


def _cycle_members(component: CompositeComponent) -> List[str]:
    """Identify the sub-components on instantaneous cycles (Kahn residue)."""
    graph = component.instantaneous_subgraph()
    in_degree: Dict[str, int] = {name: 0 for name in graph}
    for _, targets in graph.items():
        for target in targets:
            in_degree[target] += 1
    ready = [name for name, degree in in_degree.items() if degree == 0]
    removed: Set[str] = set()
    while ready:
        current = ready.pop()
        removed.add(current)
        for target in graph[current]:
            in_degree[target] -= 1
            if in_degree[target] == 0:
                ready.append(target)
    return sorted(name for name in graph if name not in removed)


def instantaneous_path_exists(component: CompositeComponent,
                              source: str, target: str) -> bool:
    """True if an instantaneous dependency path runs from one block to another."""
    graph = component.instantaneous_subgraph()
    frontier = [source]
    visited: Set[str] = set()
    while frontier:
        current = frontier.pop()
        if current == target and current != source or (
                current == target and source != target and current in visited):
            return True
        for successor in graph.get(current, ()):  # type: ignore[arg-type]
            if successor == target:
                return True
            if successor not in visited:
                visited.add(successor)
                frontier.append(successor)
    return False
