"""The synchronous simulation engine.

Model simulation is one of the means the FAA/FDA levels offer for validating
functional concepts (paper Sec. 3.1).  The engine executes any component --
atomic block, DFD, SSD, MTD, STD, cluster or CCD -- against input stimuli on
the global discrete time base and records a :class:`SimulationTrace`.

Stimuli are given per input port as

* a :class:`~repro.core.values.Stream` (explicit per-tick values),
* a plain sequence (treated as present at every tick),
* a scalar (constant, present at every tick), or
* a callable ``tick -> value`` for programmatic stimuli.

Rate gating: a :class:`ClockGatedComponent` wrapper restricts a component's
reaction to the ticks of an abstract clock -- the LA-level view in which a
cluster of rate ``every(n, true)`` only exchanges messages every *n*-th tick.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Union

from ..core.clocks import Clock
from ..core.components import Component
from ..core.errors import SimulationError
from ..core.types import check_value
from ..core.values import ABSENT, Stream, is_absent
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from .trace import SimulationTrace

StimulusSpec = Union[Stream, Sequence[Any], Callable[[int], Any], int, float, bool, str]


def _normalize_stimulus(spec: StimulusSpec, ticks: int) -> Callable[[int], Any]:
    """Turn any accepted stimulus specification into a ``tick -> value`` map."""
    if isinstance(spec, Stream):
        values = spec.values()
        return lambda tick: values[tick] if tick < len(values) else ABSENT
    if callable(spec):
        return spec  # type: ignore[return-value]
    if isinstance(spec, (list, tuple)):
        values = list(spec)
        return lambda tick: values[tick] if tick < len(values) else ABSENT
    # scalar constant
    return lambda tick: spec


class Simulator:
    """Runs a component over a finite number of ticks of the base clock."""

    def __init__(self, component: Component, check_types: bool = False):
        if not component.has_behavior():
            raise SimulationError(
                f"component {component.name!r} has no executable behaviour and "
                "cannot be simulated (FAA components may be structure-only)")
        self.component = component
        self.check_types = check_types

    def run(self, stimuli: Optional[Mapping[str, StimulusSpec]] = None,
            ticks: int = 10) -> SimulationTrace:
        """Simulate for *ticks* ticks and return the recorded trace."""
        if ticks < 0:
            raise SimulationError("tick count must be non-negative")
        stimuli = dict(stimuli or {})
        unknown = set(stimuli) - set(self.component.input_names())
        if unknown:
            raise SimulationError(
                f"stimuli refer to unknown input ports {sorted(unknown)} of "
                f"component {self.component.name!r}")
        generators = {name: _normalize_stimulus(spec, ticks)
                      for name, spec in stimuli.items()}

        trace = SimulationTrace(self.component.name)
        state = self.component.initial_state()
        for tick in range(ticks):
            inputs: Dict[str, Any] = {}
            for name in self.component.input_names():
                generator = generators.get(name)
                value = generator(tick) if generator is not None else ABSENT
                if self.check_types and not is_absent(value):
                    check_value(value, self.component.port(name).port_type,
                                context=f"{self.component.name}.{name}@t{tick}")
                inputs[name] = value
            outputs, state = self.component.react(inputs, state, tick)
            if self.check_types:
                for name, value in outputs.items():
                    if self.component.has_port(name) and not is_absent(value):
                        check_value(value, self.component.port(name).port_type,
                                    context=f"{self.component.name}.{name}@t{tick}")
            trace.record_tick(inputs, outputs)
            if isinstance(state, dict) and "mode" in state:
                trace.mode_history.append(state["mode"])
        return trace


def simulate(component: Component,
             stimuli: Optional[Mapping[str, StimulusSpec]] = None,
             ticks: int = 10, check_types: bool = False) -> SimulationTrace:
    """Convenience wrapper: simulate *component* and return the trace."""
    return Simulator(component, check_types=check_types).run(stimuli, ticks)


class ClockGatedComponent(Component):
    """Restricts a component's reactions to the ticks of an abstract clock.

    At present ticks of the gate clock the wrapped component reacts normally;
    at all other ticks it is not activated, its outputs are absent and its
    state is unchanged.  This is the LA-level execution view of a cluster
    with an explicit rate.
    """

    def __init__(self, inner: Component, clock: Clock,
                 name: Optional[str] = None):
        super().__init__(name or f"{inner.name}_gated",
                         description=f"{inner.name} gated by {clock.expression()}")
        self.inner = inner
        self.clock = clock
        for port in inner.input_ports():
            self.add_input(port.name, port.port_type, clock, port.description)
        for port in inner.output_ports():
            self.add_output(port.name, port.port_type, clock, port.description)

    def has_behavior(self) -> bool:
        return self.inner.has_behavior()

    def initial_state(self) -> Any:
        return {"inner": self.inner.initial_state(), "pattern_cache": None}

    def react(self, inputs, state, tick):
        if state is None:
            state = self.initial_state()
        pattern = self.clock.pattern(tick + 1)
        active = pattern[tick] if tick < len(pattern) else False
        if not active:
            outputs = {name: ABSENT for name in self.output_names()}
            return outputs, state
        inner_outputs, inner_state = self.inner.react(inputs, state["inner"], tick)
        return dict(inner_outputs), {"inner": inner_state,
                                     "pattern_cache": state.get("pattern_cache")}

    def instantaneous_dependencies(self):
        return self.inner.instantaneous_dependencies()


def simulate_ccd(ccd: ClusterCommunicationDiagram,
                 stimuli: Optional[Mapping[str, StimulusSpec]] = None,
                 ticks: int = 20, check_types: bool = False) -> SimulationTrace:
    """Simulate a CCD with every cluster gated by its explicit rate clock.

    A gated copy of the diagram is built so that each cluster only reacts at
    the ticks of its rate clock; the structure (channels, boundary ports) is
    preserved.  The original CCD is not modified.
    """
    gated = ClusterCommunicationDiagram(f"{ccd.name}_gated", ccd.description)
    for port in ccd.input_ports():
        gated.add_input(port.name, port.port_type, port.clock, port.description)
    for port in ccd.output_ports():
        gated.add_output(port.name, port.port_type, port.clock, port.description)

    wrappers: Dict[str, ClockGatedComponent] = {}
    for component in ccd.subcomponents():
        if isinstance(component, Cluster):
            wrapper = ClockGatedComponent(component, component.rate,
                                          name=component.name)
        else:  # non-cluster elements run on the base clock
            wrapper = ClockGatedComponent(component, component.port(
                component.input_names()[0]).clock if component.input_names()
                else ccd.port(ccd.input_names()[0]).clock, name=component.name)
        wrappers[component.name] = wrapper
        # bypass add_cluster type restriction: wrappers stand in for clusters
        super(ClusterCommunicationDiagram, gated).add_subcomponent(wrapper)

    for channel in ccd.channels():
        gated.connect(
            channel.source.port if channel.source.is_boundary()
            else f"{channel.source.component}.{channel.source.port}",
            channel.destination.port if channel.destination.is_boundary()
            else f"{channel.destination.component}.{channel.destination.port}",
            name=channel.name, delayed=channel.delayed,
            initial_value=channel.initial_value)

    return simulate(gated, stimuli, ticks, check_types)
