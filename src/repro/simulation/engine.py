"""The synchronous simulation engine.

Model simulation is one of the means the FAA/FDA levels offer for validating
functional concepts (paper Sec. 3.1).  The engine executes any component --
atomic block, DFD, SSD, MTD, STD, cluster or CCD -- against input stimuli on
the global discrete time base and records a :class:`SimulationTrace`.

Stimuli are given per input port as

* a :class:`~repro.core.values.Stream` (explicit per-tick values),
* a plain sequence (treated as present at every tick),
* a scalar (constant, present at every tick),
* a callable ``tick -> value`` for programmatic stimuli, or
* a stimulus generator (any object with a ``materialize(ticks)`` method,
  e.g. from :mod:`repro.scenarios.generators`), which is materialized once
  for the simulation horizon so the per-tick hot path is a list index.

Rate gating: a :class:`ClockGatedComponent` wrapper restricts a component's
reaction to the ticks of an abstract clock -- the LA-level view in which a
cluster of rate ``every(n, true)`` only exchanges messages every *n*-th tick.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Union

from ..core.clocks import Clock
from ..core.components import Component, register_transparent_wrapper
from ..core.errors import SimulationError
from ..core.types import check_value
from ..core.values import ABSENT, Stream, is_absent
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from .trace import SimulationTrace

StimulusSpec = Union[Stream, Sequence[Any], Callable[[int], Any], int, float, bool, str]


def normalize_stimulus(spec: StimulusSpec, ticks: int) -> Callable[[int], Any]:
    """Turn any accepted stimulus specification into a ``tick -> value`` map.

    Sequences (and materialized generators) shorter than the simulation
    horizon are absent beyond their end.  Generator materialization is the
    normalization shared by both engines: reference and compiled runs see
    the exact same per-tick values for the same generator.
    """
    if isinstance(spec, Stream):
        values = spec.values()
        return lambda tick: values[tick] if 0 <= tick < len(values) else ABSENT
    materialize = getattr(spec, "materialize", None)
    if materialize is not None and not isinstance(spec, (list, tuple)):
        values = list(materialize(ticks))
        return lambda tick: values[tick] if 0 <= tick < len(values) else ABSENT
    if callable(spec):
        return spec  # type: ignore[return-value]
    if isinstance(spec, (list, tuple)):
        values = list(spec)
        return lambda tick: values[tick] if 0 <= tick < len(values) else ABSENT
    # scalar constant
    return lambda tick: spec


def prepare_feeds(component: Component,
                  stimuli: Optional[Mapping[str, StimulusSpec]],
                  ticks: int) -> "tuple[tuple[str, Optional[Callable[[int], Any]]], ...]":
    """Validate *ticks*/*stimuli* against *component* and normalize feeds.

    The entry validation of :func:`run_stepped`, shared with the batch
    backend (:mod:`repro.simulation.batch_ir`) so every engine rejects bad
    tick counts and unknown stimulus ports with identical messages and
    materializes generators identically.  Returns one
    ``(port name, tick -> value | None)`` pair per input port, in
    ``input_names()`` order.
    """
    # bool is an int subclass: ticks=True would silently mean one tick, so
    # reject it the way ScenarioSuite.add does -- every entry point (run,
    # run_stepped, compiled runs, scenario batches) agrees on validation.
    if isinstance(ticks, bool) or not isinstance(ticks, int):
        raise SimulationError(
            f"tick count must be an integer number of ticks, got {ticks!r}")
    if ticks < 0:
        raise SimulationError("tick count must be non-negative")
    stimuli = dict(stimuli or {})
    input_names = component.input_names()
    unknown = set(stimuli) - set(input_names)
    if unknown:
        raise SimulationError(
            f"stimuli refer to unknown input ports {sorted(unknown)} of "
            f"component {component.name!r}")
    generators = {name: normalize_stimulus(spec, ticks)
                  for name, spec in stimuli.items()}
    return tuple((name, generators.get(name)) for name in input_names)


def run_stepped(component: Component,
                step: Callable[[Mapping[str, Any], Any, int],
                               "tuple[Dict[str, Any], Any]"],
                stimuli: Optional[Mapping[str, StimulusSpec]],
                ticks: int, check_types: bool,
                initial_state: Any = None) -> SimulationTrace:
    """The driver loop shared by the reference and the compiled engine.

    Validates the stimuli against *component*'s interface, then repeatedly
    applies *step* -- ``component.react`` for the interpreter, a compiled
    schedule for :class:`~repro.simulation.compiled.CompiledSimulator` --
    recording a trace (and mode history for mode-carrying states).  Keeping
    one loop guarantees both engines agree on stimulus handling, type
    checking and trace bookkeeping by construction.

    *initial_state* overrides ``component.initial_state()`` as the state
    fed to the first step.  Compiled schedules pass their own
    representation here (the flat engine's slot-based state); this also
    keeps very deep hierarchies runnable, where the recursive
    ``initial_state()`` walk would hit the Python recursion limit.
    """
    feeds = prepare_feeds(component, stimuli, ticks)

    trace = SimulationTrace(component.name)
    state = component.initial_state() if initial_state is None else initial_state
    for tick in range(ticks):
        inputs: Dict[str, Any] = {}
        for name, generator in feeds:
            value = generator(tick) if generator is not None else ABSENT
            if check_types and not is_absent(value):
                check_value(value, component.port(name).port_type,
                            context=f"{component.name}.{name}@t{tick}")
            inputs[name] = value
        outputs, state = step(inputs, state, tick)
        if check_types:
            for name, value in outputs.items():
                if component.has_port(name) and not is_absent(value):
                    check_value(value, component.port(name).port_type,
                                context=f"{component.name}.{name}@t{tick}")
        trace.record_tick(inputs, outputs)
        if isinstance(state, dict) and "mode" in state:
            trace.mode_history.append(state["mode"])
    return trace


class Simulator:
    """Runs a component over a finite number of ticks of the base clock."""

    def __init__(self, component: Component, check_types: bool = False):
        if not component.has_behavior():
            raise SimulationError(
                f"component {component.name!r} has no executable behaviour and "
                "cannot be simulated (FAA components may be structure-only)")
        self.component = component
        self.check_types = check_types

    def run(self, stimuli: Optional[Mapping[str, StimulusSpec]] = None,
            ticks: int = 10) -> SimulationTrace:
        """Simulate for *ticks* ticks and return the recorded trace."""
        return run_stepped(self.component, self.component.react, stimuli,
                           ticks, self.check_types)


def simulate(component: Component,
             stimuli: Optional[Mapping[str, StimulusSpec]] = None,
             ticks: int = 10, check_types: bool = False) -> SimulationTrace:
    """Convenience wrapper: simulate *component* and return the trace."""
    return Simulator(component, check_types=check_types).run(stimuli, ticks)


class ClockGatedComponent(Component):
    """Restricts a component's reactions to the ticks of an abstract clock.

    At present ticks of the gate clock the wrapped component reacts normally;
    at all other ticks it is not activated, its outputs are absent and its
    state is unchanged.  This is the LA-level execution view of a cluster
    with an explicit rate.
    """

    def __init__(self, inner: Component, clock: Clock,
                 name: Optional[str] = None):
        super().__init__(name or f"{inner.name}_gated",
                         description=f"{inner.name} gated by {clock.expression()}")
        self.inner = inner
        self.clock = clock
        for port in inner.input_ports():
            self.add_input(port.name, port.port_type, clock, port.description)
        for port in inner.output_ports():
            self.add_output(port.name, port.port_type, clock, port.description)

    def has_behavior(self) -> bool:
        return self.inner.has_behavior()

    def initial_state(self) -> Any:
        return {"inner": self.inner.initial_state(), "pattern_cache": None}

    def react(self, inputs, state, tick):
        if state is None:
            state = self.initial_state()
        # The presence pattern is materialized incrementally and kept in the
        # state's pattern_cache slot, so an n-tick simulation queries the
        # clock O(log n) times instead of rebuilding pattern(tick + 1) per
        # tick (which made gated simulation O(ticks^2)).
        cache = state.get("pattern_cache")
        if getattr(cache, "clock", None) is not self.clock:
            cache = self.clock.cached()
        if not cache.at(tick):
            outputs = {name: ABSENT for name in self.output_names()}
            return outputs, {"inner": state["inner"], "pattern_cache": cache}
        inner_outputs, inner_state = self.inner.react(inputs, state["inner"], tick)
        return dict(inner_outputs), {"inner": inner_state,
                                     "pattern_cache": cache}

    def instantaneous_dependencies(self):
        return self.inner.instantaneous_dependencies()

    def structure_token(self):
        # The wrapped component lives in self.inner, not in _subcomponents;
        # recurse so enclosing composites' cached plans see its mutations.
        return (self._structure_version, self.inner.structure_token())


# The gate forwards the hierarchy queries 1:1 to the wrapped component
# (mirrored ports, has_behavior/instantaneous_dependencies delegation,
# (version, inner token) structure tokens); registering it lets the
# iterative worklist walks in repro.core.components unwrap gated nesting
# instead of recursing through it, keeping arbitrarily deep
# composite/gate chains compilable under the Python recursion limit.
register_transparent_wrapper(ClockGatedComponent, "inner")


def build_gated_ccd(ccd: ClusterCommunicationDiagram
                    ) -> ClusterCommunicationDiagram:
    """Build the gated execution view of a CCD (shared by both engines).

    A gated copy of the diagram is built so that each cluster only reacts at
    the ticks of its rate clock; the structure (channels, boundary ports) is
    preserved.  The original CCD is not modified.
    """
    gated = ClusterCommunicationDiagram(f"{ccd.name}_gated", ccd.description)
    for port in ccd.input_ports():
        gated.add_input(port.name, port.port_type, port.clock, port.description)
    for port in ccd.output_ports():
        gated.add_output(port.name, port.port_type, port.clock, port.description)

    wrappers: Dict[str, ClockGatedComponent] = {}
    for component in ccd.subcomponents():
        if isinstance(component, Cluster):
            wrapper = ClockGatedComponent(component, component.rate,
                                          name=component.name)
        else:  # non-cluster elements run on the base clock
            wrapper = ClockGatedComponent(component, component.port(
                component.input_names()[0]).clock if component.input_names()
                else ccd.port(ccd.input_names()[0]).clock, name=component.name)
        wrappers[component.name] = wrapper
        # bypass add_cluster type restriction: wrappers stand in for clusters
        super(ClusterCommunicationDiagram, gated).add_subcomponent(wrapper)

    for channel in ccd.channels():
        gated.connect(
            channel.source.port if channel.source.is_boundary()
            else f"{channel.source.component}.{channel.source.port}",
            channel.destination.port if channel.destination.is_boundary()
            else f"{channel.destination.component}.{channel.destination.port}",
            name=channel.name, delayed=channel.delayed,
            initial_value=channel.initial_value)

    return gated


def simulate_ccd(ccd: ClusterCommunicationDiagram,
                 stimuli: Optional[Mapping[str, StimulusSpec]] = None,
                 ticks: int = 20, check_types: bool = False) -> SimulationTrace:
    """Simulate a CCD with every cluster gated by its explicit rate clock."""
    return simulate(build_gated_ccd(ccd), stimuli, ticks, check_types)
