"""Simulation traces: recorded streams per port, plus trace tables.

Fig. 1 of the paper shows the observation format of the operational model:
per channel and per tick either a value or "-" for absence.  The
:class:`SimulationTrace` records exactly this for all boundary ports of the
simulated component, and :meth:`SimulationTrace.format_table` renders the
tick/value table used by the Fig.-1 benchmark and by EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.errors import SimulationError
from ..core.values import ABSENT, Stream, is_absent, is_present


class SimulationTrace:
    """Recorded input and output streams of one simulation run."""

    def __init__(self, component_name: str):
        self.component_name = component_name
        self.inputs: Dict[str, Stream] = {}
        self.outputs: Dict[str, Stream] = {}
        self.mode_history: List[Any] = []
        self.ticks = 0

    # -- recording -----------------------------------------------------------
    def record_tick(self, inputs: Mapping[str, Any],
                    outputs: Mapping[str, Any]) -> None:
        """Append the observations of one tick."""
        for name, value in inputs.items():
            self.inputs.setdefault(name, Stream()).append(value)
        for name, value in outputs.items():
            self.outputs.setdefault(name, Stream()).append(value)
        self.ticks += 1

    # -- access ----------------------------------------------------------------
    def output(self, name: str) -> Stream:
        try:
            return self.outputs[name]
        except KeyError as exc:
            raise SimulationError(
                f"trace of {self.component_name!r} has no output {name!r} "
                f"(available: {sorted(self.outputs)})") from exc

    def input(self, name: str) -> Stream:
        try:
            return self.inputs[name]
        except KeyError as exc:
            raise SimulationError(
                f"trace of {self.component_name!r} has no input {name!r}") from exc

    def signal(self, name: str) -> Stream:
        """Look up a signal among outputs first, then inputs."""
        if name in self.outputs:
            return self.outputs[name]
        if name in self.inputs:
            return self.inputs[name]
        raise SimulationError(
            f"trace of {self.component_name!r} has no signal {name!r}")

    def signal_names(self) -> List[str]:
        return sorted(set(self.inputs) | set(self.outputs))

    # -- presentation --------------------------------------------------------------
    def as_rows(self, signals: Optional[Sequence[str]] = None) -> List[List[Any]]:
        """Rows ``[signal, v(0), v(1), ...]`` for the requested signals."""
        names = list(signals) if signals is not None else self.signal_names()
        rows = []
        for name in names:
            stream = self.signal(name)
            rows.append([name] + stream.values())
        return rows

    def format_table(self, signals: Optional[Sequence[str]] = None,
                     start: int = 0, end: Optional[int] = None) -> str:
        """Render a Fig.-1-style tick/value table as text."""
        end = self.ticks if end is None else min(end, self.ticks)
        names = list(signals) if signals is not None else self.signal_names()
        header = ["signal"] + [f"t+{tick}" if tick else "t"
                               for tick in range(0, end - start)]
        rows = [header]
        for name in names:
            stream = self.signal(name)
            row = [name]
            for tick in range(start, end):
                value = stream[tick] if tick < len(stream) else ABSENT
                row.append("-" if is_absent(value) else _fmt(value))
            rows.append(row)
        widths = [max(len(str(row[col])) for row in rows)
                  for col in range(len(header))]
        lines = []
        for row in rows:
            cells = [str(cell).rjust(widths[index])
                     for index, cell in enumerate(row)]
            lines.append("  ".join(cells))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"SimulationTrace({self.component_name!r}, ticks={self.ticks}, "
                f"signals={self.signal_names()})")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def streams_equal(first: Stream, second: Stream,
                  tolerance: float = 0.0) -> bool:
    """Tick-wise equality of two streams, with a numeric tolerance.

    Presence must match exactly; present numeric values may differ by up to
    *tolerance*; other values must be equal.
    """
    if len(first) != len(second):
        return False
    for a, b in zip(first, second):
        if is_absent(a) != is_absent(b):
            return False
        if is_absent(a):
            continue
        if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                and not isinstance(a, bool) and not isinstance(b, bool):
            if abs(a - b) > tolerance:
                return False
        elif a != b:
            return False
    return True


def traces_equivalent(first: SimulationTrace, second: SimulationTrace,
                      signals: Optional[Iterable[str]] = None,
                      tolerance: float = 0.0) -> bool:
    """True if both traces agree on the given output signals.

    Used to validate refactorings and the MTD-to-dataflow transformation:
    "semantically equivalent" models produce equal traces on shared stimuli.
    """
    names = list(signals) if signals is not None else sorted(first.outputs)
    for name in names:
        if name not in second.outputs:
            return False
        if not streams_equal(first.output(name), second.output(name), tolerance):
            return False
    return True


def first_difference(first: SimulationTrace, second: SimulationTrace,
                     signals: Optional[Iterable[str]] = None
                     ) -> Optional[Dict[str, Any]]:
    """Locate the first differing (signal, tick) pair, or None if equivalent."""
    names = list(signals) if signals is not None else sorted(first.outputs)
    for name in names:
        stream_a = first.output(name)
        stream_b = second.outputs.get(name, Stream())
        length = max(len(stream_a), len(stream_b))
        for tick in range(length):
            a = stream_a[tick] if tick < len(stream_a) else ABSENT
            b = stream_b[tick] if tick < len(stream_b) else ABSENT
            same_presence = is_absent(a) == is_absent(b)
            if not same_presence or (is_present(a) and a != b):
                return {"signal": name, "tick": tick, "first": a, "second": b}
    return None
