"""Synchronous simulation of AutoMoDe models.

* :mod:`repro.simulation.engine` -- the tick-based simulator and rate gating
* :mod:`repro.simulation.trace` -- recorded traces, trace tables, equivalence
* :mod:`repro.simulation.causality` -- hierarchical instantaneous-loop check
* :mod:`repro.simulation.multirate` -- stimulus generators and resampling
"""

from .causality import (CausalityAnalysis, CausalityResult, analyze_causality,
                        assert_causal, instantaneous_path_exists)
from .engine import (ClockGatedComponent, Simulator, simulate, simulate_ccd)
from .multirate import (align_lengths, constant, presence_ratio, pulse, ramp,
                        resample, sine, sporadic, step)
from .trace import (SimulationTrace, first_difference, streams_equal,
                    traces_equivalent)

__all__ = [
    "CausalityAnalysis", "CausalityResult", "ClockGatedComponent",
    "SimulationTrace", "Simulator", "align_lengths", "analyze_causality",
    "assert_causal", "constant", "first_difference",
    "instantaneous_path_exists", "presence_ratio", "pulse", "ramp",
    "resample", "simulate", "simulate_ccd", "sine", "sporadic", "step",
    "streams_equal", "traces_equivalent",
]
