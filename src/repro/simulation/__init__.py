"""Synchronous simulation of AutoMoDe models.

* :mod:`repro.simulation.engine` -- the reference tick-based interpreter and
  rate gating
* :mod:`repro.simulation.compiled` -- the compiled engine: one-time schedule
  compilation, batch scenario runs, differential verification
* :mod:`repro.simulation.schedule_ir` -- the flat schedule IR:
  cross-hierarchy flattening onto one global step program with slot-based
  environments, gating predicates and correction barriers
* :mod:`repro.simulation.batch_ir` -- the vectorized battery backend:
  the flat program over a ``(slot, scenario)`` NumPy plane, one sweep per
  scenario battery (requires NumPy; gated exports are ``None`` without it)
* :mod:`repro.simulation.native` -- the native C backend: the flat program
  lowered to one compiled C step function driven through ctypes (requires
  a platform C compiler; check :func:`native_available`)
* :mod:`repro.simulation.trace` -- recorded traces, trace tables, equivalence
* :mod:`repro.simulation.causality` -- hierarchical instantaneous-loop check
* :mod:`repro.simulation.multirate` -- stimulus generators and resampling
"""

from .causality import (CausalityAnalysis, CausalityResult, analyze_causality,
                        assert_causal, instantaneous_path_exists)
from .compiled import (CompiledSchedule, CompiledSimulator, ScenarioSuite,
                       compile_ccd, compile_component, compile_nested,
                       simulate_ccd_compiled, simulate_compiled)
from .engine import (ClockGatedComponent, Simulator, build_gated_ccd,
                     normalize_stimulus, prepare_feeds, simulate, simulate_ccd)
from .schedule_ir import FlatSchedule, FlatState, compile_flat, is_flattenable

try:
    from .batch_ir import BatchSchedule, LaneOutcome, compile_batch
except ImportError:  # pragma: no cover - numpy is an install requirement
    BatchSchedule = None  # type: ignore[assignment, misc]
    LaneOutcome = None  # type: ignore[assignment, misc]
    compile_batch = None  # type: ignore[assignment]
from .multirate import (align_lengths, constant, presence_ratio, pulse, ramp,
                        resample, sine, sporadic, step)
from .native import (NativeLoweringError, NativeSchedule, compile_native,
                     native_available)
from .trace import (SimulationTrace, first_difference, streams_equal,
                    traces_equivalent)

__all__ = [
    "BatchSchedule", "CausalityAnalysis", "CausalityResult",
    "ClockGatedComponent", "CompiledSchedule", "CompiledSimulator",
    "FlatSchedule", "FlatState", "LaneOutcome", "NativeLoweringError",
    "NativeSchedule", "ScenarioSuite", "SimulationTrace", "Simulator",
    "align_lengths", "analyze_causality", "assert_causal", "build_gated_ccd",
    "compile_batch", "compile_ccd", "compile_component", "compile_flat",
    "compile_native", "compile_nested", "constant", "first_difference",
    "instantaneous_path_exists", "is_flattenable", "native_available",
    "normalize_stimulus", "prepare_feeds", "presence_ratio", "pulse", "ramp",
    "resample", "simulate", "simulate_ccd", "simulate_ccd_compiled",
    "simulate_compiled", "sine", "sporadic", "step", "streams_equal",
    "traces_equivalent",
]
