"""Native C backend for the flat schedule IR, driven through ctypes.

The fifth execution engine of the reproduction: the flat op program
(:mod:`repro.simulation.schedule_ir`) is lowered to one self-contained C
step function (:mod:`.emit`), compiled once with the platform compiler
and cached content-addressed on disk (:mod:`.toolchain`), and driven
through :mod:`ctypes` behind the standard stepped contract
(:mod:`.schedule`).  Select it with ``backend="native"`` on
:class:`~repro.simulation.compiled.CompiledSimulator` /
:class:`~repro.simulation.compiled.ScenarioSuite`; hosts without a C
compiler degrade gracefully to the flat interpreter.

``python -m repro.simulation.native --info`` reports the discovered
compiler and the shared-object cache.
"""

from .emit import LoweredProgram, lower_program
from .schedule import NativeSchedule, compile_native
from .toolchain import (EMITTER_VERSION, MAX_CACHE_ENTRIES,
                        NativeLoweringError, cache_dir, cache_entries,
                        cache_key, ensure_shared_object, evict_stale,
                        find_compiler, native_available, native_info,
                        reset_toolchain_cache)

__all__ = [
    "EMITTER_VERSION", "LoweredProgram", "MAX_CACHE_ENTRIES",
    "NativeLoweringError", "NativeSchedule", "cache_dir", "cache_entries",
    "cache_key", "compile_native", "ensure_shared_object", "evict_stale",
    "find_compiler", "lower_program", "native_available", "native_info",
    "reset_toolchain_cache",
]
