"""Compiler discovery and the content-addressed shared-object cache.

The native backend compiles one C translation unit per flat schedule.  This
module owns everything platform-shaped about that:

* **discovery** -- :func:`find_compiler` probes ``$CC`` then ``cc`` /
  ``gcc`` / ``clang`` on PATH once per process (:func:`native_available`
  is the boolean view callers and tests gate on);
* **caching** -- :func:`ensure_shared_object` keys compiled ``.so`` files
  by a content hash of the generated C source (itself a deterministic
  function of the schedule's structure: the flat program is rebuilt
  whenever the model's ``structure_token`` moves) together with the
  :data:`EMITTER_VERSION` constant and the compiler banner, so an emitter
  change, a compiler upgrade or any structural model change each get a
  fresh object while identical schedules share one compile across
  processes and sessions;
* **hygiene** -- :func:`evict_stale` drops objects from older emitter
  versions and trims the cache to a bounded number of entries;
  :func:`native_info` reports compiler, cache directory and cached
  entries (the ``python -m repro.simulation.native --info`` payload).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from ...core.errors import SimulationError

#: Bump whenever the C emitter's output semantics change: the version is
#: part of every cache key and :func:`evict_stale` drops entries of older
#: versions.
EMITTER_VERSION = 1

#: Cache-entry filename prefix carrying the emitter version.
_PREFIX = f"nv{EMITTER_VERSION}-"

#: Upper bound on cached shared objects (oldest-first trim).
MAX_CACHE_ENTRIES = 64

#: Compilers probed (in order) when ``$CC`` is not set.
_CANDIDATES = ("cc", "gcc", "clang")

_UNSET = object()
_compiler_cache: Any = _UNSET
_banner_cache: Dict[str, str] = {}


class NativeLoweringError(SimulationError):
    """Native C lowering was refused or failed.

    Raised when the schedule's ``ir_verify`` report is not clean, when no
    C compiler is available to an explicit :func:`compile_native` call, or
    when the platform compiler rejects the generated translation unit.
    """


def find_compiler() -> Optional[str]:
    """Absolute path of the platform C compiler, or ``None``.

    ``$CC`` wins when set (and resolvable); otherwise the first of ``cc``,
    ``gcc``, ``clang`` found on PATH.  The probe result is cached per
    process; tests may call :func:`reset_toolchain_cache` after changing
    the environment.
    """
    global _compiler_cache
    if _compiler_cache is not _UNSET:
        return _compiler_cache
    explicit = os.environ.get("CC")
    candidates = ((explicit,) if explicit else ()) + _CANDIDATES
    found = None
    for name in candidates:
        path = shutil.which(name)
        if path:
            found = path
            break
    _compiler_cache = found
    return found


def native_available() -> bool:
    """True when a C compiler is available (mirrors the NumPy gate of the
    batch backend in :mod:`repro.simulation`)."""
    return find_compiler() is not None


def reset_toolchain_cache() -> None:
    """Forget the cached compiler probe (tests that mutate ``$CC``/PATH)."""
    global _compiler_cache
    _compiler_cache = _UNSET
    _banner_cache.clear()


def compiler_banner(compiler: str) -> str:
    """First line of ``<compiler> --version`` (keyed into the cache hash)."""
    banner = _banner_cache.get(compiler)
    if banner is None:
        try:
            proc = subprocess.run([compiler, "--version"],
                                  capture_output=True, text=True, timeout=30)
            banner = (proc.stdout or proc.stderr).splitlines()[0].strip() \
                if (proc.stdout or proc.stderr) else compiler
        except (OSError, subprocess.SubprocessError, IndexError):
            banner = compiler
        _banner_cache[compiler] = banner
    return banner


def cache_dir() -> str:
    """The shared-object cache directory (created lazily by writers).

    ``$REPRO_NATIVE_CACHE`` overrides; the default is
    ``~/.cache/repro-native`` with a per-user temp-dir fallback when the
    home directory is not writable.
    """
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    home = os.path.expanduser("~")
    if home and home != "~" and os.path.isdir(home):
        return os.path.join(home, ".cache", "repro-native")
    return os.path.join(tempfile.gettempdir(),
                        f"repro-native-{os.getuid() if hasattr(os, 'getuid') else 'u'}")


def cache_key(source: str, compiler: Optional[str] = None) -> str:
    """Deterministic cache key of one generated translation unit.

    The key hashes ``(EMITTER_VERSION, compiler banner, source)``.  The
    source is a pure function of the flat schedule's program, which is
    rebuilt whenever the model's ``structure_token`` changes -- so the key
    is content-addressed over exactly the facts that affect the compiled
    object, while two identically-structured models (same token history,
    same expressions) share one entry.
    """
    compiler = compiler if compiler is not None else find_compiler()
    banner = compiler_banner(compiler) if compiler else ""
    digest = hashlib.sha256()
    digest.update(f"emitter={EMITTER_VERSION}\n".encode())
    digest.update(f"compiler={banner}\n".encode())
    digest.update(source.encode())
    return _PREFIX + digest.hexdigest()[:40]


def evict_stale(keep: int = MAX_CACHE_ENTRIES,
                directory: Optional[str] = None) -> List[str]:
    """Drop stale cache entries; returns the removed file paths.

    Stale means: built by a different :data:`EMITTER_VERSION` (filename
    prefix mismatch), or beyond the newest *keep* current-version entries
    (oldest ``.so`` mtime first).  Companion ``.c`` sources are removed
    with their objects.
    """
    directory = directory or cache_dir()
    removed: List[str] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    entries: List[Tuple[float, str]] = []
    for name in names:
        if not name.endswith(".so"):
            continue
        path = os.path.join(directory, name)
        if not name.startswith(_PREFIX):
            removed.extend(_remove_entry(path))
            continue
        try:
            entries.append((os.path.getmtime(path), path))
        except OSError:
            continue
    entries.sort(reverse=True)
    for _mtime, path in entries[max(0, keep):]:
        removed.extend(_remove_entry(path))
    return removed


def _remove_entry(so_path: str) -> List[str]:
    removed = []
    for path in (so_path, so_path[:-3] + ".c"):
        try:
            os.remove(path)
            removed.append(path)
        except OSError:
            pass
    return removed


def ensure_shared_object(source: str,
                         directory: Optional[str] = None
                         ) -> Tuple[str, bool]:
    """Compile *source* (or reuse the cached object); returns ``(path, hit)``.

    The write is atomic (compile to a temp name, ``os.replace`` into
    place), so concurrent workers racing on the same key converge on one
    valid object.  A cache miss triggers :func:`evict_stale`.
    """
    compiler = find_compiler()
    if compiler is None:
        raise NativeLoweringError(
            "no C compiler available (set $CC or install cc/gcc/clang)")
    directory = directory or cache_dir()
    key = cache_key(source, compiler)
    so_path = os.path.join(directory, key + ".so")
    if os.path.exists(so_path):
        return so_path, True
    os.makedirs(directory, exist_ok=True)
    c_path = os.path.join(directory, key + ".c")
    with open(c_path, "w", encoding="utf-8") as handle:
        handle.write(source)
    tmp_path = f"{so_path}.tmp{os.getpid()}"
    command = [compiler, "-O2", "-std=c99", "-fPIC", "-shared",
               "-o", tmp_path, c_path, "-lm"]
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise NativeLoweringError(
            f"C compilation failed ({' '.join(command)}):\n"
            f"{proc.stderr.strip() or proc.stdout.strip()}")
    os.replace(tmp_path, so_path)
    evict_stale(directory=directory)
    return so_path, False


def cache_entries(directory: Optional[str] = None) -> List[Dict[str, Any]]:
    """The cached shared objects: name, size, mtime, current-version flag."""
    directory = directory or cache_dir()
    entries: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return entries
    for name in names:
        if not name.endswith(".so"):
            continue
        path = os.path.join(directory, name)
        try:
            stat = os.stat(path)
        except OSError:
            continue
        entries.append({"name": name, "bytes": stat.st_size,
                        "mtime": stat.st_mtime,
                        "current_version": name.startswith(_PREFIX)})
    return entries


def native_info() -> Dict[str, Any]:
    """Compiler, cache location and cached entries (the ``--info`` payload)."""
    compiler = find_compiler()
    return {
        "available": compiler is not None,
        "compiler": compiler,
        "compiler_banner": compiler_banner(compiler) if compiler else None,
        "emitter_version": EMITTER_VERSION,
        "cache_dir": cache_dir(),
        "max_cache_entries": MAX_CACHE_ENTRIES,
        "entries": cache_entries(),
    }
