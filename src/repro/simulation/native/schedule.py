"""The native schedule: a compiled C step function behind ``run_stepped``.

:class:`NativeSchedule` wraps a :class:`~repro.simulation.schedule_ir.FlatSchedule`
whose op program has been lowered to C (:mod:`.emit`), compiled
(:mod:`.toolchain`) and loaded through :mod:`ctypes`.  Its :attr:`step`
keeps the exact ``(inputs, state, tick) -> (outputs, state)`` contract of
the flat engine -- :class:`~repro.simulation.schedule_ir.FlatState` in and
out, nested dict states converted on entry -- so it is a drop-in fifth
backend for :func:`~repro.simulation.engine.run_stepped` and
:class:`~repro.simulation.compiled.CompiledSimulator`.

**The tick protocol.**  Python marshals the boundary each tick: the tag
plane is ``memset`` to all-ABSENT (ABSENT is tag 0 by construction),
inputs are scattered into their slots, the previous delayed buffers are
stored into the ``pb*`` planes and ``memmove``-seeded into ``nb*`` (so
unwritten buffers carry over, exactly like the flat engine's
``next_buffers = prev_buffers[:]``), gate predicates -- functions of the
tick only -- are pre-evaluated into a byte array, and the C function runs
the whole op program in one call.  Values without a native representation
(nested leaf states aside: out-of-int64 integers, enum members, structs,
any non-exact-typed object) travel as :data:`~repro.ascet.c_expr.TAG_OBJ`
with the int payload indexing a per-tick object table, so C can *move*
them (copies, buffers) even though only Python can *compute* with them.

**The trampoline.**  Ops the emitter routed to the fallback path -- and
lowered expression blocks whose run-time values escape exact int64/double
replication -- re-enter Python through one ``ctypes`` callback carrying
the op index; the replay closures execute the original flat-program
semantics (the same nested step functions and compiled expression
closures) against the tagged plane.  A replay that raises stores the
exception and returns nonzero; the C function unwinds immediately and
:attr:`step` re-raises it unchanged, which is what makes error-path
behaviour (exception type, message, tick) identical to the flat backend
by construction.

:class:`NativeSchedule` deliberately does **not** offer ``op_labels`` /
``instrumented_step`` / ``recording_step``: op-level profiling and flight
recording instrument the *Python* op loop, so
:meth:`repro.obs.context.Telemetry.step_for` finds nothing to swap and
observability degrades gracefully to spans and counters.
"""

from __future__ import annotations

import ctypes
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ...core.values import ABSENT
from ...obs.context import active as _obs_active
from ...obs.context import maybe_span
from ..schedule_ir import (OP_CORRECT, OP_EXPR, OP_RUN, FlatSchedule,
                           FlatState)
from .emit import LoweredProgram, lower_program
from .toolchain import (EMITTER_VERSION, NativeLoweringError,
                        ensure_shared_object, find_compiler)

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

_TRAMP_TYPE = ctypes.CFUNCTYPE(ctypes.c_longlong, ctypes.c_longlong)

_ARGTYPES = [ctypes.POINTER(ctypes.c_ubyte), ctypes.POINTER(ctypes.c_longlong),
             ctypes.POINTER(ctypes.c_double),
             ctypes.POINTER(ctypes.c_ubyte), ctypes.POINTER(ctypes.c_longlong),
             ctypes.POINTER(ctypes.c_double),
             ctypes.POINTER(ctypes.c_ubyte), ctypes.POINTER(ctypes.c_longlong),
             ctypes.POINTER(ctypes.c_double),
             ctypes.POINTER(ctypes.c_ubyte), _TRAMP_TYPE]


class NativeSchedule:
    """A flat schedule executing through a compiled C step function.

    Introspection (``linear_steps`` / ``describe`` / ``ops_summary`` /
    ``mode_paths`` and the boundary specs) delegates to the wrapped
    :attr:`flat` schedule: the native backend changes the execution
    substrate, not the program.
    """

    kind = "native"

    def __init__(self, flat: FlatSchedule, so_path: str,
                 lowered: LoweredProgram):
        self.flat = flat
        self.component = flat.component
        self.so_path = so_path
        self.lowered = lowered
        #: total trampoline re-entries (fallback ops + run-time bails);
        #: plain attribute, no observability branch on the hot path.
        self.trampoline_calls = 0

        n_slots = flat.n_slots
        n_buffers = len(flat.buffer_specs)
        self._tag = (ctypes.c_ubyte * n_slots)()
        self._iv = (ctypes.c_longlong * n_slots)()
        self._fv = (ctypes.c_double * n_slots)()
        self._pbt = (ctypes.c_ubyte * n_buffers)()
        self._pbi = (ctypes.c_longlong * n_buffers)()
        self._pbf = (ctypes.c_double * n_buffers)()
        self._nbt = (ctypes.c_ubyte * n_buffers)()
        self._nbi = (ctypes.c_longlong * n_buffers)()
        self._nbf = (ctypes.c_double * n_buffers)()
        self._gate = (ctypes.c_ubyte * len(lowered.gate_indexes))()

        self._lib = ctypes.CDLL(so_path)
        self._fn = self._lib.repro_step
        self._fn.restype = ctypes.c_longlong
        self._fn.argtypes = _ARGTYPES

        # per-tick context the replay closures read
        self._objtable: List[Any] = []
        self._prev_states: List[Any] = []
        self._next_states: List[Any] = []
        self._scratch: List[Any] = []
        self._tick = 0
        self._pending: Optional[BaseException] = None

        self._replay = self._build_replay()
        self._tramp = _TRAMP_TYPE(self._trampoline)  # kept alive on self
        self.step = self._make_step()

    # -- tagged-plane marshalling ------------------------------------------

    def _store(self, slot: int, value: Any) -> None:
        kind = type(value)
        if value is ABSENT:
            self._tag[slot] = 0
        elif kind is bool:
            self._tag[slot] = 3
            self._iv[slot] = 1 if value else 0
        elif kind is int and _INT64_MIN <= value <= _INT64_MAX:
            self._tag[slot] = 1
            self._iv[slot] = value
        elif kind is float:
            self._tag[slot] = 2
            self._fv[slot] = value
        else:
            # exact-type dispatch on purpose: subclasses (IntEnum, ...)
            # must round-trip identically, so they ride the object table
            objtable = self._objtable
            self._tag[slot] = 4
            self._iv[slot] = len(objtable)
            objtable.append(value)

    def _load(self, slot: int) -> Any:
        tag = self._tag[slot]
        if tag == 0:
            return ABSENT
        if tag == 1:
            return self._iv[slot]
        if tag == 2:
            return self._fv[slot]
        if tag == 3:
            return self._iv[slot] != 0
        return self._objtable[self._iv[slot]]

    def _copy_slot(self, src: int, dst: int) -> None:
        self._tag[dst] = self._tag[src]
        self._iv[dst] = self._iv[src]
        self._fv[dst] = self._fv[src]

    def _store_prev_buffer(self, index: int, value: Any) -> None:
        kind = type(value)
        if value is ABSENT:
            self._pbt[index] = 0
        elif kind is bool:
            self._pbt[index] = 3
            self._pbi[index] = 1 if value else 0
        elif kind is int and _INT64_MIN <= value <= _INT64_MAX:
            self._pbt[index] = 1
            self._pbi[index] = value
        elif kind is float:
            self._pbt[index] = 2
            self._pbf[index] = value
        else:
            objtable = self._objtable
            self._pbt[index] = 4
            self._pbi[index] = len(objtable)
            objtable.append(value)

    def _load_next_buffer(self, index: int) -> Any:
        tag = self._nbt[index]
        if tag == 0:
            return ABSENT
        if tag == 1:
            return self._nbi[index]
        if tag == 2:
            return self._nbf[index]
        if tag == 3:
            return self._nbi[index] != 0
        return self._objtable[self._nbi[index]]

    # -- the trampoline ----------------------------------------------------

    def _trampoline(self, op_index: int) -> int:
        self.trampoline_calls += 1
        try:
            self._replay[op_index]()
            return 0
        except BaseException as exc:  # noqa: BLE001 - re-raised by step
            self._pending = exc
            return 1

    def _build_replay(self) -> List[Any]:
        """One replay closure per op (``None`` for never-trampolined ops).

        Each closure re-executes its op with the flat engine's exact
        semantics, reading and writing the tagged plane through
        :meth:`_load` / :meth:`_store` instead of the flat ``values`` list.
        """
        absent = ABSENT
        load = self._load
        store = self._store
        copy_slot = self._copy_slot
        replay: List[Any] = []
        for op in self.flat.program:
            code = op[0]
            if code == OP_RUN:
                _, leaf_index, fn, in_spec, out_spec, post, si = op

                def replay_run(fn=fn, leaf_index=leaf_index, in_spec=in_spec,
                               out_spec=out_spec, post=post, si=si):
                    sub_inputs = {name: load(slot) for name, slot in in_spec}
                    outputs, new_state = fn(
                        sub_inputs, self._prev_states[leaf_index], self._tick)
                    self._next_states[leaf_index] = new_state
                    for name, slot in out_spec:
                        store(slot, outputs.get(name, absent))
                    for src, dst in post:
                        copy_slot(src, dst)
                    if si >= 0:
                        self._scratch[si] = sub_inputs

                replay.append(replay_run)
            elif code == OP_EXPR:
                _, _leaf, in_spec, items, post = op

                def replay_expr(in_spec=in_spec, items=items, post=post):
                    env = {name: load(slot) for name, slot in in_spec}
                    for slot, fn in items:
                        if slot >= 0:
                            store(slot, fn(env))
                        else:
                            fn(env)
                    for src, dst in post:
                        copy_slot(src, dst)

                replay.append(replay_expr)
            elif code == OP_CORRECT:
                entries = op[1]

                def replay_correct(entries=entries):
                    for si, leaf_index, fn, in_spec in entries:
                        final = {name: load(slot) for name, slot in in_spec}
                        if final != self._scratch[si]:
                            _, corrected = fn(
                                final, self._prev_states[leaf_index],
                                self._tick)
                            self._next_states[leaf_index] = corrected

                replay.append(replay_correct)
            else:  # copy / buf_read / buf_write / gate are always native
                replay.append(None)
        return replay

    # -- the step function -------------------------------------------------

    def _make_step(self):
        flat = self.flat
        input_spec = flat.input_spec
        output_spec = flat.output_spec
        n_buffers = len(flat.buffer_specs)
        n_scratch = flat._scratch_count  # noqa: SLF001
        convert = flat._convert_state  # noqa: SLF001
        absent = ABSENT
        gates = [(index, flat.program[op_index][1])
                 for index, op_index in enumerate(self.lowered.gate_indexes)]
        tag, gate = self._tag, self._gate
        pbt, pbi, pbf = self._pbt, self._pbi, self._pbf
        nbt, nbi, nbf = self._nbt, self._nbi, self._nbf
        iv, fv = self._iv, self._fv
        tag_bytes = ctypes.sizeof(tag)
        pbt_bytes = ctypes.sizeof(pbt)
        pbi_bytes = ctypes.sizeof(pbi)
        pbf_bytes = ctypes.sizeof(pbf)
        memset = ctypes.memset
        memmove = ctypes.memmove
        fn = self._fn
        tramp = self._tramp
        store = self._store
        load = self._load
        store_buffer = self._store_prev_buffer
        load_buffer = self._load_next_buffer

        def step(inputs: Mapping[str, Any], state: Any,
                 tick: int) -> Tuple[Dict[str, Any], Any]:
            if type(state) is not FlatState:
                state = convert(state)
            prev_buffers = state.buffers
            self._prev_states = prev_states = state.leaf_states
            self._next_states = next_states = prev_states[:]
            self._scratch = [None] * n_scratch if n_scratch else []
            self._tick = tick
            self._objtable.clear()
            memset(tag, 0, tag_bytes)
            for name, slot in input_spec:
                value = inputs.get(name, absent)
                if value is not absent:
                    store(slot, value)
            for index in range(n_buffers):
                store_buffer(index, prev_buffers[index])
            memmove(nbt, pbt, pbt_bytes)
            memmove(nbi, pbi, pbi_bytes)
            memmove(nbf, pbf, pbf_bytes)
            for index, predicate in gates:
                gate[index] = 1 if predicate(tick) else 0
            failed = fn(tag, iv, fv, pbt, pbi, pbf, nbt, nbi, nbf, gate,
                        tramp)
            if failed:
                pending = self._pending
                self._pending = None
                if pending is None:  # pragma: no cover - defensive
                    raise NativeLoweringError(
                        f"native step failed at op {failed - 1} without a "
                        "pending Python exception")
                raise pending
            outputs = {name: load(slot) for name, slot in output_spec}
            next_buffers = [load_buffer(index) for index in range(n_buffers)]
            return outputs, FlatState(next_states, next_buffers)

        return step

    # -- delegation to the wrapped flat schedule ---------------------------

    @property
    def input_spec(self) -> Tuple[Tuple[str, int], ...]:
        return self.flat.input_spec

    @property
    def output_spec(self) -> Tuple[Tuple[str, int], ...]:
        return self.flat.output_spec

    @property
    def program(self) -> Tuple[Tuple[Any, ...], ...]:
        return self.flat.program

    @property
    def fallback_paths(self) -> List[str]:
        return self.flat.fallback_paths

    def initial_state(self) -> FlatState:
        return self.flat.initial_state()

    def linear_steps(self, prefix: str = "") -> List[Tuple[str, str]]:
        return self.flat.linear_steps(prefix)

    def describe(self) -> str:
        return self.flat.describe()

    def ops_summary(self) -> List[str]:
        return self.flat.ops_summary()

    def mode_paths(self, state: Any) -> Dict[str, Any]:
        return self.flat.mode_paths(state)

    def __repr__(self) -> str:
        return (f"NativeSchedule({self.component.name!r}, "
                f"ops={len(self.flat.program)}, "
                f"lowered={len(self.lowered.lowered_ops)}, "
                f"fallback={len(self.lowered.fallback_ops)})")


def compile_native(schedule: Any,
                   cache_directory: Optional[str] = None) -> NativeSchedule:
    """Compile a flat schedule (or a flattenable component) to native code.

    The lowering is gated on a clean static-verifier report: a schedule
    whose :func:`~repro.analysis.lint.ir_verify.lint_flat_schedule` report
    carries errors is refused with :class:`NativeLoweringError` -- the
    C fast path keeps slot accesses unguarded on exactly the write-before-
    read / gate-structure facts the verifier proves, so an unverified
    program must not reach the compiler.  Also raises
    :class:`NativeLoweringError` when no C compiler is available
    (:class:`~repro.simulation.compiled.CompiledSimulator` checks
    :func:`~.toolchain.native_available` first and degrades to ``"flat"``
    instead of calling this).
    """
    if not isinstance(schedule, FlatSchedule):
        from ..schedule_ir import compile_flat
        schedule = compile_flat(schedule)
    # lazy import: analysis.lint imports the schedule IR for its verifier
    from ...analysis.lint.ir_verify import lint_flat_schedule
    report = lint_flat_schedule(schedule)
    errors = report.errors()
    if errors:
        details = "\n".join(finding.describe() for finding in errors)
        raise NativeLoweringError(
            f"native lowering refused: ir_verify report for "
            f"{schedule.component.name!r} is not clean:\n{details}")
    if find_compiler() is None:
        raise NativeLoweringError(
            "no C compiler available (set $CC or install cc/gcc/clang); "
            "use backend='flat' or backend='auto' instead")
    telemetry = _obs_active()
    registry = telemetry.registry if telemetry is not None else None
    with maybe_span("compile.native", component=schedule.component.name,
                    ops=len(schedule.program)) as span:
        lowered = lower_program(schedule, EMITTER_VERSION)
        so_path, cache_hit = ensure_shared_object(lowered.source,
                                                  cache_directory)
        native = NativeSchedule(schedule, so_path, lowered)
        if span is not None:
            span.attributes.update(lowered_ops=len(lowered.lowered_ops),
                                   fallback_ops=len(lowered.fallback_ops),
                                   cache_hit=cache_hit)
    if registry is not None:
        registry.counter("native.compile.total").inc()
        registry.counter("native.compile.cache_hits" if cache_hit
                         else "native.compile.cache_misses").inc()
        registry.counter("native.ops.lowered").inc(
            len(lowered.lowered_ops))
        registry.counter("native.ops.fallback").inc(
            len(lowered.fallback_ops))
    return native
