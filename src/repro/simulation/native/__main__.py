"""CLI for the native backend's toolchain state.

``python -m repro.simulation.native --info`` prints the discovered C
compiler, the shared-object cache directory and the cached entries;
``--evict`` additionally drops stale entries (older emitter versions and
anything beyond the retention bound).  Exit status is 0 when a compiler
is available, 1 otherwise, so CI jobs can gate on it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .toolchain import evict_stale, native_info


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simulation.native",
        description="Report the native backend's compiler and object cache.")
    parser.add_argument("--info", action="store_true",
                        help="print compiler and cache state (default)")
    parser.add_argument("--evict", action="store_true",
                        help="drop stale cache entries, then print state")
    arguments = parser.parse_args(argv)

    if arguments.evict:
        for path in evict_stale():
            print(f"evicted {path}")

    info = native_info()
    print(f"available:       {'yes' if info['available'] else 'no'}")
    print(f"compiler:        {info['compiler'] or '(none found)'}")
    if info["compiler_banner"]:
        print(f"compiler banner: {info['compiler_banner']}")
    print(f"emitter version: {info['emitter_version']}")
    print(f"cache dir:       {info['cache_dir']}")
    print(f"cache entries:   {len(info['entries'])} "
          f"(retention {info['max_cache_entries']})")
    for entry in info["entries"]:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S",
                              time.localtime(entry["mtime"]))
        stale = "" if entry["current_version"] else "  [stale version]"
        print(f"  {entry['name']}  {entry['bytes']} bytes  {stamp}{stale}")
    return 0 if info["available"] else 1


if __name__ == "__main__":
    sys.exit(main())
