"""Multi-rate stimuli and helpers (paper Sec. 2).

AutoMoDe explicitly supports multi-rate systems: "each message flow is
associated with an abstract clock" indicating the frequency or the event
pattern of message exchange.  This module provides

* stimulus generators (constant, step, ramp, pulse, sine, sporadic) that
  produce :class:`~repro.core.values.Stream` objects aligned with a clock,
* helpers to resample streams between clocks (``when`` + ``hold``) used by
  the LA-level rate-transition machinery and the Fig.-2 benchmark.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Optional, Sequence

from ..core.clocks import Clock, BASE_CLOCK
from ..core.errors import SimulationError
from ..core.values import ABSENT, Stream, is_absent, is_present


def _clock_pattern(clock: Optional[Clock], ticks: int) -> List[bool]:
    if clock is None:
        clock = BASE_CLOCK
    return clock.pattern(ticks)


def constant(value: Any, ticks: int, clock: Optional[Clock] = None) -> Stream:
    """A constant signal, present at the ticks of *clock*."""
    pattern = _clock_pattern(clock, ticks)
    return Stream([value if present else ABSENT for present in pattern])


def step(ticks: int, step_tick: int, before: float = 0.0, after: float = 1.0,
         clock: Optional[Clock] = None) -> Stream:
    """A step signal switching from *before* to *after* at *step_tick*."""
    pattern = _clock_pattern(clock, ticks)
    values = []
    for tick in range(ticks):
        if not pattern[tick]:
            values.append(ABSENT)
        else:
            values.append(after if tick >= step_tick else before)
    return Stream(values)


def ramp(ticks: int, slope: float = 1.0, start: float = 0.0,
         clock: Optional[Clock] = None) -> Stream:
    """A ramp ``start + slope * tick`` sampled on *clock*."""
    pattern = _clock_pattern(clock, ticks)
    return Stream([start + slope * tick if pattern[tick] else ABSENT
                   for tick in range(ticks)])


def sine(ticks: int, amplitude: float = 1.0, period: float = 20.0,
         offset: float = 0.0, clock: Optional[Clock] = None) -> Stream:
    """A sampled sine wave (period in base ticks)."""
    if period <= 0:
        raise SimulationError("sine period must be positive")
    pattern = _clock_pattern(clock, ticks)
    return Stream([
        offset + amplitude * math.sin(2.0 * math.pi * tick / period)
        if pattern[tick] else ABSENT
        for tick in range(ticks)
    ])


def pulse(ticks: int, high_ticks: Sequence[int], low: Any = False,
          high: Any = True, clock: Optional[Clock] = None) -> Stream:
    """A boolean-style pulse train: *high* at the listed ticks, *low* elsewhere."""
    highs = set(high_ticks)
    pattern = _clock_pattern(clock, ticks)
    return Stream([(high if tick in highs else low) if pattern[tick] else ABSENT
                   for tick in range(ticks)])


def sporadic(ticks: int, events: Iterable[tuple]) -> Stream:
    """An event stream: present only at the given ``(tick, value)`` pairs."""
    values = [ABSENT] * ticks
    for tick, value in events:
        if 0 <= tick < ticks:
            values[tick] = value
    return Stream(values)


def resample(stream: Stream, target_clock: Clock,
             hold_last: bool = True, initial: Any = ABSENT) -> Stream:
    """Re-time a stream onto another clock.

    At ticks where *target_clock* is present, the output carries the most
    recent present value of the input (sample and hold) or, with
    ``hold_last=False``, only the value if it happens to be present at that
    very tick.  At all other ticks the output is absent.  This is the
    combination of ``when`` and ``hold`` that the LA-level rate transitions
    are built from.
    """
    ticks = len(stream)
    pattern = target_clock.pattern(ticks)
    output = []
    last = initial
    for tick in range(ticks):
        value = stream[tick]
        if is_present(value):
            last = value
        if not pattern[tick]:
            output.append(ABSENT)
        elif hold_last:
            output.append(last)
        else:
            output.append(value)
    return Stream(output)


def presence_ratio(stream: Stream) -> float:
    """Fraction of ticks at which the stream carries a message."""
    if len(stream) == 0:
        return 0.0
    return stream.presence_count() / len(stream)


def align_lengths(streams: Sequence[Stream]) -> List[Stream]:
    """Pad all streams with absence so they have equal length."""
    if not streams:
        return []
    length = max(len(stream) for stream in streams)
    padded = []
    for stream in streams:
        values = stream.values()
        values.extend([ABSENT] * (length - len(values)))
        padded.append(Stream(values))
    return padded
