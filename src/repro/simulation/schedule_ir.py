"""The flat-schedule IR: one global step program over slot-based environments.

AutoMoDe's operational-architecture level is a *flattened* network of
communicating blocks scheduled as one global cluster plan (paper Sec. 2.4):
the hierarchical DFD/SSD description is a design artefact, while the
deployed system executes a single linear schedule.  The nested compiled
engine (:mod:`repro.simulation.compiled`) mirrors the *hierarchy* at run
time -- every :class:`~repro.core.components.CompositeComponent` is a
closure that re-marshals a dict environment at each boundary, every tick.
This module mirrors the *deployment* instead: the whole hierarchy is
compiled once into a :class:`FlatSchedule`, a linear program of opcodes
over a flat slot environment.

**Slot-based environments.**  Every port of every component occurrence in
the hierarchy is assigned a fixed integer slot.  A tick allocates one flat
``values`` list (all :data:`~repro.core.values.ABSENT`), scatters the
boundary inputs into their slots and runs the program; channels are integer
slot copies instead of ``(component, port)`` dict keys, and each leaf's
input environment is built exactly once from its slots -- no per-composite
dict construction, key translation or input re-filtering.

**The program.**  Six opcodes suffice for the full semantics of the nested
engine:

* ``run``   -- execute one leaf step (gather inputs from slots, call the
  nested-compiled step closure, scatter outputs to slots, forward its
  instantaneous channels);
* ``copy``  -- instantaneous channel propagation (boundary forwarding and
  boundary-output collection) as slot-to-slot copies;
* ``buf_read`` / ``buf_write`` -- delayed channels: seed destination slots
  from the previous tick's buffers / commit this tick's source values;
* ``gate``  -- the gating predicate of a flattened
  :class:`~repro.simulation.engine.ClockGatedComponent` subtree: when the
  clock is silent at this tick, jump over the subtree's ops (outputs stay
  absent, leaf states and buffers are carried over unchanged);
* ``correct`` -- the per-composite correction barrier: non-feedthrough
  entries whose inputs changed after they ran are re-stepped from their
  tick-start state with the final values, mirroring the reference
  interpreter's second pass.

**State.**  Run-time state is a :class:`FlatState`: one flat list of leaf
states plus one flat list of delayed-channel buffers.  The step also
accepts the nested dict state produced by ``component.initial_state()``
(converted on entry), so it remains a drop-in
``(inputs, state, tick) -> (outputs, state)`` step function for
:func:`~repro.simulation.engine.run_stepped`.

**Fallbacks.**  Subtrees the flattener cannot hoist -- composites or
clock-gated wrappers with a custom ``react``, MTDs/STDs/atomic blocks, and
non-feedthrough composites (which must stay single steps so the correction
barrier can re-run them atomically) -- are compiled on the nested path
(:func:`~repro.simulation.compiled.compile_nested`) and embedded as single
``run`` ops; :meth:`FlatSchedule.ops_summary` labels them ``nested``.

Compilation is **iterative** (an explicit stack of emission generators plus
the worklist helpers of :mod:`repro.core.components`), so hierarchies
thousands of levels deep compile and run without hitting the Python
recursion limit -- depths the recursive engines cannot even build an
initial state for.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..core.components import (Component, CompositeComponent,
                               ExpressionComponent,
                               subtree_structure_tokens)
from ..core.errors import SimulationError
from ..core.values import ABSENT
from ..obs.context import maybe_span
from .engine import ClockGatedComponent

#: Opcodes of the flat program (tuple-encoded, dispatched by one loop).
(OP_RUN, OP_EXPR, OP_COPY, OP_BUF_READ, OP_BUF_WRITE, OP_GATE,
 OP_CORRECT) = range(7)

_OP_NAMES = {OP_RUN: "run", OP_EXPR: "expr", OP_COPY: "copy",
             OP_BUF_READ: "buf_read", OP_BUF_WRITE: "buf_write",
             OP_GATE: "gate", OP_CORRECT: "correct"}


class FlatState:
    """Run-time state of a flat program: leaf states + delayed buffers.

    Positional: ``leaf_states[i]`` belongs to the i-th leaf of the
    schedule, ``buffers[j]`` to the j-th delayed channel.  Instances are
    treated as immutable by the step function (each tick returns a new
    one), which is what keeps the correction barrier's access to the
    tick-start state trivially correct.
    """

    __slots__ = ("leaf_states", "buffers")

    def __init__(self, leaf_states: List[Any], buffers: List[Any]):
        self.leaf_states = leaf_states
        self.buffers = buffers

    def __repr__(self) -> str:
        return (f"FlatState(leaves={len(self.leaf_states)}, "
                f"buffers={len(self.buffers)})")


class _Leaf:
    """One leaf step of the flat program (a nested-compiled schedule)."""

    __slots__ = ("index", "component", "schedule", "run_kind", "state_path",
                 "steps_prefix", "mode_path")

    def __init__(self, index: int, component: Component, schedule: Any,
                 run_kind: str, state_path: Tuple[str, ...],
                 steps_prefix: str, mode_path: str):
        self.index = index
        self.component = component
        self.schedule = schedule
        self.run_kind = run_kind
        self.state_path = state_path
        self.steps_prefix = steps_prefix
        self.mode_path = mode_path


def is_flattenable(component: Component) -> bool:
    """True if *component* roots a hierarchy the flattener can hoist.

    Flattenable roots are composites with the default synchronous ``react``
    and clock-gated wrappers (with the default ``react``) around such
    composites, in any nesting.  Everything else -- MTDs, STDs, atomic
    blocks, subclasses with a custom ``react`` -- executes on the nested
    compiled path.
    """
    while isinstance(component, ClockGatedComponent) \
            and type(component).react is ClockGatedComponent.react:
        component = component.inner
    return (isinstance(component, CompositeComponent)
            and type(component).react is CompositeComponent.react)


def _dig(state: Any, path: Tuple[str, ...]) -> Any:
    """Navigate a nested engine state dict along *path* (None-tolerant)."""
    current = state
    for key in path:
        if not isinstance(current, Mapping):
            return None
        current = current.get(key)
    return current


class _Flattener:
    """One compile pass: hierarchy -> (ops, slots, leaves, buffers).

    Emission is driven by an explicit stack of generators (one per
    composite/gated node being flattened), so compilation of arbitrarily
    deep hierarchies never recurses in Python.  A single structure-token
    map and instantaneous-dependency cache are shared across every
    execution-plan build of the pass, keeping the whole compile O(n).
    """

    def __init__(self, root: Component):
        self.root = root
        self.n_slots = 0
        self.slot_names: List[str] = []
        self.ops: List[List[Any]] = []
        self.leaves: List[_Leaf] = []
        #: per delayed channel: (initial value, owner state path, channel name)
        self.buffer_specs: List[Tuple[Any, Tuple[str, ...], str]] = []
        self.scratch_count = 0
        self.fallback_paths: List[str] = []
        self._linear: List[Tuple[str, str]] = []
        self._deps_cache: Dict[int, Any] = {}
        self._tokens: Dict[int, Any] = {}

    # -- slot allocation ---------------------------------------------------

    def _new_slot(self, label: str) -> int:
        slot = self.n_slots
        self.n_slots += 1
        self.slot_names.append(label)
        return slot

    def _port_slots(self, component: Component,
                    prefix: str) -> Dict[str, int]:
        return {port.name: self._new_slot(f"{prefix}.{port.name}")
                for port in component.ports()}

    # -- emission ----------------------------------------------------------

    def flatten(self) -> "FlatSchedule":
        root = self.root
        in_slots = {name: self._new_slot(f"{root.name}.{name}")
                    for name in root.input_names()}
        out_slots = {name: self._new_slot(f"{root.name}.{name}")
                     for name in root.output_names()}
        stack: List[Iterator[Any]] = [self._emit_node(
            root, in_slots, out_slots, (), root.name, root.name)]
        while stack:
            try:
                child = next(stack[-1])
            except StopIteration:
                stack.pop()
            else:
                stack.append(child)
        program = tuple(tuple(op) for op in self._merge_copies(self.ops))
        input_spec = tuple((name, in_slots[name])
                           for name in root.input_names())
        output_spec = tuple((name, out_slots[name])
                            for name in root.output_names())
        return FlatSchedule(root, program, self.n_slots, input_spec,
                            output_spec, self.leaves, self.buffer_specs,
                            self.scratch_count, self._linear,
                            self.fallback_paths, tuple(self.slot_names))

    def _merge_copies(self, ops: List[List[Any]]) -> List[List[Any]]:
        """Peephole pass: fuse adjacent ``copy`` ops into one.

        Boundary-output collection of a flattened child followed by the
        parent's channel propagation emits back-to-back copy ops; copies
        execute strictly in order, so fusing the pair lists is behaviour-
        preserving and saves one dispatch per composite boundary per tick.
        Gate jump targets are recomputed from op identity.
        """
        merged: List[List[Any]] = []
        gates = [op for op in ops if op[0] == OP_GATE]
        gate_targets = {gate[2] for gate in gates}
        targets: Dict[int, Any] = {}  # original op index -> op at that index
        for index, op in enumerate(ops):
            targets[index] = op
            if op[0] == OP_COPY and merged and merged[-1][0] == OP_COPY \
                    and index not in gate_targets:
                merged[-1][1] = merged[-1][1] + op[1]
                targets[index] = merged[-1]
                continue
            merged.append(op)
        targets[len(ops)] = None  # jump past the end
        positions = {id(op): index for index, op in enumerate(merged)}
        for gate in gates:
            target_op = targets[gate[2]]
            gate[2] = (len(merged) if target_op is None
                       else positions[id(target_op)])
        return merged

    def _emit_node(self, component: Component, in_slots: Dict[str, int],
                   out_slots: Dict[str, int], state_path: Tuple[str, ...],
                   steps_path: str, mode_path: str) -> Iterator[Any]:
        """Emit ops for a flattenable node (gated wrapper chain or composite).

        The wrapper's boundary ports *are* the inner component's (same
        names, forwarded 1:1), so gating aliases the slots instead of
        copying: when the gate clock is silent the region is jumped over
        and the (shared) output slots simply stay absent.
        """
        if isinstance(component, ClockGatedComponent):
            self._linear.append((steps_path, "gated"))
            pattern = component.clock.cached()
            gate = [OP_GATE, pattern.at, -1]
            self.ops.append(gate)
            inner = component.inner
            yield self._emit_node(inner, in_slots, out_slots,
                                  state_path + ("inner",),
                                  f"{steps_path}/{inner.name}", mode_path)
            gate[2] = len(self.ops)  # jump target: first op after the region
        else:
            yield self._emit_composite(component, in_slots, out_slots,
                                       state_path, steps_path, mode_path)

    def _emit_composite(self, composite: CompositeComponent,
                        in_slots: Dict[str, int], out_slots: Dict[str, int],
                        state_path: Tuple[str, ...], steps_path: str,
                        mode_path: str) -> Iterator[Any]:
        from .compiled import compile_nested

        self._linear.append((steps_path, "composite"))
        token = self._tokens.get(id(composite))
        if token is None:
            self._tokens.update(subtree_structure_tokens(composite))
            token = self._tokens[id(composite)]
        plan = composite.execution_plan(_token=token,
                                        _deps_cache=self._deps_cache)

        port_slots: Dict[str, Dict[str, int]] = {}
        subs: Dict[str, Component] = {}
        for entry in plan.entries:
            sub = composite.subcomponent(entry.name)
            subs[entry.name] = sub
            port_slots[entry.name] = self._port_slots(
                sub, f"{steps_path}/{entry.name}")

        def slot_of(key: Tuple[Optional[str], str]) -> int:
            comp, port = key
            if comp is None:
                slot = in_slots.get(port)
                return out_slots[port] if slot is None else slot
            return port_slots[comp][port]

        # delayed channels: allocate buffers, seed destination slots
        buf_index: Dict[str, int] = {}
        seed_pairs = []
        for channel_name, dst_key, initial in plan.delayed_seed:
            buf_index[channel_name] = index = len(self.buffer_specs)
            self.buffer_specs.append((initial, state_path, channel_name))
            seed_pairs.append((index, slot_of(dst_key)))
        if seed_pairs:
            self.ops.append([OP_BUF_READ, tuple(seed_pairs)])

        # instantaneous boundary-input forwarding
        boundary_pairs = tuple((slot_of(src), slot_of(dst))
                               for src, dst in plan.boundary_propagate)
        if boundary_pairs:
            self.ops.append([OP_COPY, boundary_pairs])

        # Which entries can still receive input values *after* they ran?
        # Only then can the tick-start state update have seen stale inputs,
        # i.e. only then is the correction barrier live.  An entry whose
        # producers all precede it in plan order always sees final inputs,
        # so the nested engine's compare-and-rerun provably never fires for
        # it: such entries need no correction tracking, and non-feedthrough
        # composites among them can be flattened instead of falling back to
        # the nested path.
        n_entries = len(plan.entries)
        has_late_producer = [False] * n_entries
        suffix_writes: set = set()
        for index in range(n_entries - 1, -1, -1):
            entry = plan.entries[index]
            suffix_writes |= {dst[0] for _, dst in entry.propagate
                              if dst[0] is not None}
            has_late_producer[index] = entry.name in suffix_writes

        # sub-components in plan order
        corrections = []
        for index, entry in enumerate(plan.entries):
            sub = subs[entry.name]
            propagate = tuple((slot_of(src), slot_of(dst))
                              for src, dst in entry.propagate)
            if is_flattenable(sub) \
                    and (entry.has_feedthrough or not has_late_producer[index]):
                slots = port_slots[entry.name]
                yield self._emit_node(
                    sub,
                    {name: slots[name] for name in sub.input_names()},
                    {name: slots[name] for name in sub.output_names()},
                    state_path + ("subs", entry.name),
                    f"{steps_path}/{entry.name}", f"{mode_path}/{entry.name}")
                if propagate:
                    self.ops.append([OP_COPY, propagate])
                continue
            # leaf: run the nested-compiled step as one op.  Non-feedthrough
            # composites with live late producers deliberately stay nested --
            # the correction barrier must be able to re-run them atomically
            # from their tick-start state, exactly like the reference
            # interpreter's second pass.  (Flattened children are not
            # behaviour-checked here: their own sections check their
            # entries, keeping the whole compile O(n) in hierarchy size.)
            if not sub.has_behavior():
                raise SimulationError(
                    f"sub-component {entry.name!r} of {composite.name!r} has "
                    f"no executable behaviour")
            schedule = compile_nested(sub)
            run_kind = schedule.kind
            if isinstance(sub, (CompositeComponent, ClockGatedComponent)):
                run_kind = "nested"
                self.fallback_paths.append(f"{steps_path}/{entry.name}")
            leaf = _Leaf(len(self.leaves), sub, schedule, run_kind,
                         state_path + ("subs", entry.name), steps_path,
                         f"{mode_path}/{entry.name}")
            self.leaves.append(leaf)
            self._linear.extend(schedule.linear_steps(steps_path))
            slots = port_slots[entry.name]
            in_spec = tuple((name, slots[name]) for name in entry.input_names)
            if isinstance(sub, ExpressionComponent) \
                    and type(sub).react is ExpressionComponent.react:
                # pure expression block: evaluate the compiled closures
                # straight into the slots.  No step call, no output dict,
                # and no correction tracking -- the state is a passthrough
                # and a non-feedthrough expression reads none of the inputs
                # a late producer could change, so the nested engine's
                # compare-and-rerun is observably a no-op for it.
                compiler = sub._evaluator.compile  # noqa: SLF001
                leaf.run_kind = "expr"
                # expressions for undeclared ports are still evaluated (the
                # nested engine does, and evaluation may raise) but their
                # values have no slot to land in
                items = tuple((slots.get(name, -1), compiler(expression))
                              for name, expression
                              in sub.output_expressions.items())
                self.ops.append([OP_EXPR, leaf.index, in_spec, items,
                                 propagate])
                continue
            out_spec = tuple((name, slots[name])
                             for name in sub.output_names())
            scratch = -1
            if not entry.has_feedthrough and has_late_producer[index]:
                scratch = self.scratch_count
                self.scratch_count += 1
                corrections.append((scratch, leaf.index, schedule.step,
                                    in_spec))
            self.ops.append([OP_RUN, leaf.index, schedule.step, in_spec,
                             out_spec, propagate, scratch])

        # correction barrier for this composite's non-feedthrough entries
        if corrections:
            self.ops.append([OP_CORRECT, tuple(corrections)])

        # boundary-output collection, then delayed commits
        out_copy, out_buf = [], []
        for port_name, is_delayed, channel_name, _initial, src_key \
                in plan.boundary_outputs:
            if is_delayed:
                out_buf.append((buf_index[channel_name], out_slots[port_name]))
            else:
                out_copy.append((slot_of(src_key), out_slots[port_name]))
        if out_copy:
            self.ops.append([OP_COPY, tuple(out_copy)])
        if out_buf:
            self.ops.append([OP_BUF_READ, tuple(out_buf)])
        commit_pairs = tuple((slot_of(src_key), buf_index[channel_name])
                             for channel_name, src_key in plan.delayed_commit)
        if commit_pairs:
            self.ops.append([OP_BUF_WRITE, commit_pairs])


class FlatSchedule:
    """A component hierarchy compiled into one linear slot program.

    Drop-in replacement for the nested
    :class:`~repro.simulation.compiled.CompiledSchedule`: ``step`` has the
    same ``(inputs, state, tick) -> (outputs, state)`` signature (state as
    :class:`FlatState`, with nested dict states converted on entry), and
    :meth:`linear_steps` / :meth:`describe` keep the hierarchical-path
    naming contract of ``CompiledSchedule.linear_steps`` exactly, so debug
    output and path-keyed reports are stable across engines.  The IR itself
    is inspectable through :meth:`ops_summary`.
    """

    kind = "flat"

    def __init__(self, component: Component, program: Tuple[Tuple[Any, ...], ...],
                 n_slots: int, input_spec: Tuple[Tuple[str, int], ...],
                 output_spec: Tuple[Tuple[str, int], ...],
                 leaves: List[_Leaf],
                 buffer_specs: List[Tuple[Any, Tuple[str, ...], str]],
                 scratch_count: int, linear: List[Tuple[str, str]],
                 fallback_paths: List[str],
                 slot_names: Tuple[str, ...] = ()):
        self.component = component
        self.program = program
        self.n_slots = n_slots
        self.leaves = leaves
        self.buffer_specs = buffer_specs
        self.fallback_paths = fallback_paths
        #: hierarchical ``path.port`` label per slot (forensics decoding)
        self.slot_names = slot_names
        self._input_spec = input_spec
        self._output_spec = output_spec
        self._scratch_count = scratch_count
        self._linear = linear
        self.step = self._make_step()

    # -- boundary specs ----------------------------------------------------

    @property
    def input_spec(self) -> Tuple[Tuple[str, int], ...]:
        """``(port_name, slot)`` pairs scattered from the inputs each tick
        (public for IR passes and the static verifier)."""
        return self._input_spec

    @property
    def output_spec(self) -> Tuple[Tuple[str, int], ...]:
        """``(port_name, slot)`` pairs gathered into the outputs each tick
        (public for IR passes and the static verifier)."""
        return self._output_spec

    # -- state -------------------------------------------------------------

    def initial_state(self) -> FlatState:
        """The flat initial state (built iteratively: deep-hierarchy safe)."""
        return FlatState([leaf.component.initial_state()
                          for leaf in self.leaves],
                         [spec[0] for spec in self.buffer_specs])

    def _convert_state(self, state: Any) -> FlatState:
        """Adopt a nested engine state dict (or ``None``) as a FlatState."""
        if state is None:
            return self.initial_state()
        leaf_states = [_dig(state, leaf.state_path) for leaf in self.leaves]
        buffers = []
        for initial, state_path, channel_name in self.buffer_specs:
            delayed = _dig(state, state_path + ("delayed",))
            buffers.append(delayed.get(channel_name, initial)
                           if isinstance(delayed, Mapping) else initial)
        return FlatState(leaf_states, buffers)

    # -- the step function -------------------------------------------------

    def _make_step(self):
        program = self.program
        n_ops = len(program)
        n_slots = self.n_slots
        n_scratch = self._scratch_count
        input_spec = self._input_spec
        output_spec = self._output_spec
        convert = self._convert_state
        absent = ABSENT

        def step(inputs: Mapping[str, Any], state: Any,
                 tick: int) -> Tuple[Dict[str, Any], Any]:
            if type(state) is not FlatState:
                state = convert(state)
            prev_states = state.leaf_states
            prev_buffers = state.buffers
            next_states = prev_states[:]
            next_buffers = prev_buffers[:]
            values = [absent] * n_slots
            for name, slot in input_spec:
                values[slot] = inputs.get(name, absent)
            scratch: List[Any] = [None] * n_scratch if n_scratch else []
            pc = 0
            while pc < n_ops:
                op = program[pc]
                pc += 1
                code = op[0]
                if code == OP_RUN:
                    _, leaf_index, fn, in_spec, out_spec, post, si = op
                    sub_inputs = {name: values[slot]
                                  for name, slot in in_spec}
                    outputs, new_state = fn(sub_inputs,
                                            prev_states[leaf_index], tick)
                    next_states[leaf_index] = new_state
                    for name, slot in out_spec:
                        values[slot] = outputs.get(name, absent)
                    for src, dst in post:
                        values[dst] = values[src]
                    if si >= 0:
                        scratch[si] = sub_inputs
                elif code == OP_EXPR:
                    _, _leaf, in_spec, items, post = op
                    env = {name: values[slot] for name, slot in in_spec}
                    for slot, fn in items:
                        if slot >= 0:
                            values[slot] = fn(env)
                        else:
                            fn(env)
                    for src, dst in post:
                        values[dst] = values[src]
                elif code == OP_COPY:
                    for src, dst in op[1]:
                        values[dst] = values[src]
                elif code == OP_BUF_READ:
                    for index, dst in op[1]:
                        values[dst] = prev_buffers[index]
                elif code == OP_GATE:
                    if not op[1](tick):
                        pc = op[2]
                elif code == OP_BUF_WRITE:
                    for src, index in op[1]:
                        next_buffers[index] = values[src]
                else:  # OP_CORRECT
                    for si, leaf_index, fn, in_spec in op[1]:
                        final = {name: values[slot]
                                 for name, slot in in_spec}
                        if final != scratch[si]:
                            _, corrected = fn(final, prev_states[leaf_index],
                                              tick)
                            next_states[leaf_index] = corrected
            outputs = {}
            for name, slot in output_spec:
                outputs[name] = values[slot]
            return outputs, FlatState(next_states, next_buffers)

        return step

    # -- instrumentation ---------------------------------------------------

    def op_labels(self) -> List[Tuple[str, str, bool]]:
        """Per-op descriptors for :class:`repro.obs.profile.OpProfile`:
        ``(kind name, human label, runs-on-nested-fallback)``.

        Labels match :meth:`ops_summary`; the nested flag marks ``run`` ops
        whose leaf executes on the nested-compiled fallback path, so
        profiles can report fallback activity without re-deriving it.
        """
        labels: List[Tuple[str, str, bool]] = []
        for op in self.program:
            code = op[0]
            kind = _OP_NAMES[code]
            nested = False
            if code in (OP_RUN, OP_EXPR):
                leaf = self.leaves[op[1]]
                label = (f"{leaf.steps_prefix}/{leaf.component.name} "
                         f"[{leaf.run_kind}]")
                nested = leaf.run_kind == "nested"
            elif code == OP_GATE:
                label = f"gate -> {op[2]}"
            elif code == OP_CORRECT:
                label = f"correction barrier ({len(op[1])})"
            else:
                label = f"{kind} ({len(op[1])} pairs)"
            labels.append((kind, label, nested))
        return labels

    def instrumented_step(self, profile: Any,
                          clock: Any = time.perf_counter):
        """An instrumented variant of :attr:`step` recording into *profile*.

        Mirrors :meth:`_make_step` op for op (any semantic change there
        MUST be replicated here -- the equivalence test in
        ``tests/test_obs.py`` pins identical traces) and adds, per op
        executed: execution count and wall time; per gate: skip counts;
        per correction barrier: re-run counts; per tick: total step time.
        The default :attr:`step` closure is left untouched -- swapping the
        step function in and out is the whole zero-overhead-when-off
        mechanism, there is no profiling branch on the uninstrumented
        path.
        """
        program = self.program
        n_ops = len(program)
        n_slots = self.n_slots
        n_scratch = self._scratch_count
        input_spec = self._input_spec
        output_spec = self._output_spec
        convert = self._convert_state
        absent = ABSENT
        counts = profile.counts
        times = profile.times
        gate_skips = profile.gate_skips

        def step(inputs: Mapping[str, Any], state: Any,
                 tick: int) -> Tuple[Dict[str, Any], Any]:
            tick_started = clock()
            if type(state) is not FlatState:
                state = convert(state)
            prev_states = state.leaf_states
            prev_buffers = state.buffers
            next_states = prev_states[:]
            next_buffers = prev_buffers[:]
            values = [absent] * n_slots
            for name, slot in input_spec:
                values[slot] = inputs.get(name, absent)
            scratch: List[Any] = [None] * n_scratch if n_scratch else []
            pc = 0
            while pc < n_ops:
                index = pc
                op = program[pc]
                pc += 1
                code = op[0]
                op_started = clock()
                if code == OP_RUN:
                    _, leaf_index, fn, in_spec, out_spec, post, si = op
                    sub_inputs = {name: values[slot]
                                  for name, slot in in_spec}
                    outputs, new_state = fn(sub_inputs,
                                            prev_states[leaf_index], tick)
                    next_states[leaf_index] = new_state
                    for name, slot in out_spec:
                        values[slot] = outputs.get(name, absent)
                    for src, dst in post:
                        values[dst] = values[src]
                    if si >= 0:
                        scratch[si] = sub_inputs
                elif code == OP_EXPR:
                    _, _leaf, in_spec, items, post = op
                    env = {name: values[slot] for name, slot in in_spec}
                    for slot, fn in items:
                        if slot >= 0:
                            values[slot] = fn(env)
                        else:
                            fn(env)
                    for src, dst in post:
                        values[dst] = values[src]
                elif code == OP_COPY:
                    for src, dst in op[1]:
                        values[dst] = values[src]
                elif code == OP_BUF_READ:
                    for index_, dst in op[1]:
                        values[dst] = prev_buffers[index_]
                elif code == OP_GATE:
                    if not op[1](tick):
                        pc = op[2]
                        gate_skips[index] += 1
                elif code == OP_BUF_WRITE:
                    for src, index_ in op[1]:
                        next_buffers[index_] = values[src]
                else:  # OP_CORRECT
                    for si, leaf_index, fn, in_spec in op[1]:
                        final = {name: values[slot]
                                 for name, slot in in_spec}
                        if final != scratch[si]:
                            _, corrected = fn(final, prev_states[leaf_index],
                                              tick)
                            next_states[leaf_index] = corrected
                            profile.correction_reruns += 1
                times[index] += clock() - op_started
                counts[index] += 1
            outputs = {}
            for name, slot in output_spec:
                outputs[name] = values[slot]
            profile.ticks += 1
            profile.total_time_s += clock() - tick_started
            return outputs, FlatState(next_states, next_buffers)

        return step

    def recording_step(self, recorder: Any):
        """A flight-recording variant of :attr:`step` feeding *recorder*.

        Mirrors :meth:`_make_step` op for op (any semantic change there
        MUST be replicated here -- the forensics tests pin identical
        traces) and adds: at tick 0 the recorder's window is reset (a new
        scenario owns it); after every completed tick the slot environment
        is snapshotted into the ring; when an op raises, the failing tick,
        op index, partial slot environment and inputs are recorded before
        the exception propagates unchanged.  The default :attr:`step`
        closure is untouched -- same swap-in discipline as
        :meth:`instrumented_step`, zero overhead while recording is off.
        """
        program = self.program
        n_ops = len(program)
        n_slots = self.n_slots
        n_scratch = self._scratch_count
        input_spec = self._input_spec
        output_spec = self._output_spec
        convert = self._convert_state
        absent = ABSENT
        begin_run = recorder.begin_run
        record_tick = recorder.record_tick
        record_failure = recorder.record_failure

        def step(inputs: Mapping[str, Any], state: Any,
                 tick: int) -> Tuple[Dict[str, Any], Any]:
            if tick == 0:
                begin_run()
            if type(state) is not FlatState:
                state = convert(state)
            prev_states = state.leaf_states
            prev_buffers = state.buffers
            next_states = prev_states[:]
            next_buffers = prev_buffers[:]
            values = [absent] * n_slots
            for name, slot in input_spec:
                values[slot] = inputs.get(name, absent)
            scratch: List[Any] = [None] * n_scratch if n_scratch else []
            pc = 0
            index = 0
            try:
                while pc < n_ops:
                    index = pc
                    op = program[pc]
                    pc += 1
                    code = op[0]
                    if code == OP_RUN:
                        _, leaf_index, fn, in_spec, out_spec, post, si = op
                        sub_inputs = {name: values[slot]
                                      for name, slot in in_spec}
                        outputs, new_state = fn(sub_inputs,
                                                prev_states[leaf_index],
                                                tick)
                        next_states[leaf_index] = new_state
                        for name, slot in out_spec:
                            values[slot] = outputs.get(name, absent)
                        for src, dst in post:
                            values[dst] = values[src]
                        if si >= 0:
                            scratch[si] = sub_inputs
                    elif code == OP_EXPR:
                        _, _leaf, in_spec, items, post = op
                        env = {name: values[slot] for name, slot in in_spec}
                        for slot, fn in items:
                            if slot >= 0:
                                values[slot] = fn(env)
                            else:
                                fn(env)
                        for src, dst in post:
                            values[dst] = values[src]
                    elif code == OP_COPY:
                        for src, dst in op[1]:
                            values[dst] = values[src]
                    elif code == OP_BUF_READ:
                        for index_, dst in op[1]:
                            values[dst] = prev_buffers[index_]
                    elif code == OP_GATE:
                        if not op[1](tick):
                            pc = op[2]
                    elif code == OP_BUF_WRITE:
                        for src, index_ in op[1]:
                            next_buffers[index_] = values[src]
                    else:  # OP_CORRECT
                        for si, leaf_index, fn, in_spec in op[1]:
                            final = {name: values[slot]
                                     for name, slot in in_spec}
                            if final != scratch[si]:
                                _, corrected = fn(final,
                                                  prev_states[leaf_index],
                                                  tick)
                                next_states[leaf_index] = corrected
            except Exception as exc:  # noqa: BLE001 - forensics, re-raised
                record_failure(tick, index, values, inputs, exc)
                raise
            outputs = {}
            for name, slot in output_spec:
                outputs[name] = values[slot]
            record_tick(tick, values)
            return outputs, FlatState(next_states, next_buffers)

        return step

    # -- introspection -----------------------------------------------------

    def linear_steps(self, prefix: str = "") -> List[Tuple[str, str]]:
        """The flattened schedule: ``(hierarchical path, kind)`` per node.

        Identical paths and kinds to
        :meth:`~repro.simulation.compiled.CompiledSchedule.linear_steps` on
        the same component (the pin test in ``tests/test_flat_schedule.py``
        enforces this), so path-keyed debug output is engine-independent.
        """
        if not prefix:
            return list(self._linear)
        return [(f"{prefix}/{path}", kind) for path, kind in self._linear]

    def describe(self) -> str:
        """Human-readable rendering of the flattened schedule."""
        return "\n".join(f"{kind:>10}  {path}"
                         for path, kind in self.linear_steps())

    def ops_summary(self) -> List[str]:
        """One line per op of the flat program (the IR view).

        ``run`` ops name the leaf's hierarchical path and compilation kind
        (``nested`` marks unflattenable subtrees running on the nested
        fallback path); ``gate`` ops show their jump target.
        """
        lines = []
        for index, op in enumerate(self.program):
            code = op[0]
            name = _OP_NAMES[code]
            if code in (OP_RUN, OP_EXPR):
                leaf = self.leaves[op[1]]
                detail = (f"{leaf.steps_prefix}/{leaf.component.name} "
                          f"[{leaf.run_kind}]")
                if code == OP_RUN and op[6] >= 0:
                    detail += " (correction-tracked)"
            elif code == OP_GATE:
                detail = f"-> {op[2]} when clock silent"
            elif code == OP_CORRECT:
                detail = f"{len(op[1])} barrier entr" \
                         f"{'y' if len(op[1]) == 1 else 'ies'}"
            else:
                detail = f"{len(op[1])} pair{'s' if len(op[1]) != 1 else ''}"
            lines.append(f"{index:>4} {name:>9}  {detail}")
        return lines

    def mode_paths(self, state: Any) -> Dict[str, Any]:
        """Active mode/state of every MTD and STD, keyed by hierarchical path.

        The flat-engine counterpart of
        :func:`repro.scenarios.report.active_mode_paths`: identical paths
        and values, read positionally from the flat state instead of
        walking nested dicts.
        """
        from ..scenarios.report import active_mode_paths
        if state is None:
            return {}
        if type(state) is not FlatState:
            return active_mode_paths(self.component, state)
        out: Dict[str, Any] = {}
        for leaf, leaf_state in zip(self.leaves, state.leaf_states):
            active_mode_paths(leaf.component, leaf_state, leaf.mode_path, out)
        return out

    def __repr__(self) -> str:
        return (f"FlatSchedule({self.component.name!r}, "
                f"ops={len(self.program)}, slots={self.n_slots}, "
                f"leaves={len(self.leaves)})")


def compile_flat(component: Component) -> FlatSchedule:
    """Compile *component* into a :class:`FlatSchedule`.

    Raises :class:`SimulationError` if the root is not flattenable (use
    :func:`~repro.simulation.compiled.compile_component`, which falls back
    to the nested path automatically).
    """
    if not is_flattenable(component):
        raise SimulationError(
            f"component {component.name!r} ({type(component).__name__}) is "
            "not flattenable: the flat schedule IR requires a composite "
            "hierarchy (or clock-gated composite) with the default "
            "synchronous react")
    with maybe_span("compile.flatten", component=component.name) as span:
        schedule = _Flattener(component).flatten()
        if span is not None:
            span.attributes.update(ops=len(schedule.program),
                                   slots=schedule.n_slots,
                                   leaves=len(schedule.leaves),
                                   fallbacks=len(schedule.fallback_paths))
    return schedule
