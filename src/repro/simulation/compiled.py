"""The compiled simulation engine: compile once, run many.

The reference :class:`~repro.simulation.engine.Simulator` is a tree-walking
interpreter: every tick of every composite re-derives the topological
evaluation order, the instantaneous-dependency information and the channel
routing from the model structure.  That is the right reference semantics --
simple, always in sync with the model -- but it makes simulation the
bottleneck of FAA/FDA validation (paper Sec. 3.1), where one functional
concept is exercised against many scenarios.

This module splits execution into two phases.

**Compile** (:func:`compile_component`): flattenable hierarchies -- default
composites, optionally wrapped in clock gates -- are lowered onto the flat
schedule IR of :mod:`repro.simulation.schedule_ir` (one global step program
over slot-based environments); everything else takes the **nested** path
(:func:`compile_nested`), where the hierarchy is walked *once* and
translated into a tree of small step closures with every schedule decision
precomputed:

* each composite becomes a linear step list (its sub-components in the
  cached :class:`~repro.core.components.ExecutionPlan` order) with
  prebuilt instantaneous-propagation lists, delayed-channel seed/commit
  lists and boundary collection lists -- no per-tick graph analysis;
* each :class:`~repro.simulation.engine.ClockGatedComponent` gets an
  incrementally materialized clock pattern
  (:meth:`~repro.core.clocks.Clock.cached`) shared across runs;
* each mode-transition diagram gets per-mode transition tables (guards
  lowered to closures via :mod:`repro.core.expr_compile`) and compiled
  mode behaviours;
* each state-transition diagram gets per-state sorted transition tables
  with compiled guards, actions and emissions;
* each expression block gets its output expressions lowered to closures;
* every other component (function/stateful blocks...) is already a single
  ``react`` call and is executed directly.

**Run** (:class:`CompiledSimulator` / :class:`ScenarioSuite`): the compiled
schedule is a pure function of ``(inputs, state, tick)`` and can therefore
be reused across any number of simulation runs.  :class:`ScenarioSuite`
exploits this for scenario sweeps: one compile, many stimulus sets, with
:meth:`ScenarioSuite.verify_against_reference` as the built-in differential
check against the interpreter.

The schedule is compiled from a snapshot of the model: structural changes
made to the model after compilation are not picked up (recompile instead).
Observable behaviour -- traces, including ``mode_history`` -- is
tick-for-tick identical to the reference engine; the differential suite in
``tests/test_compiled_equivalence.py`` and the golden traces in
``tests/test_golden_traces.py`` enforce this.
"""

from __future__ import annotations

import warnings
from typing import (Any, Callable, Dict, List, Mapping, Optional, Tuple)

from ..core.components import (Component, CompositeComponent,
                               ExpressionComponent)
from ..core.errors import ModelError, SimulationError
from ..core.values import ABSENT, is_present
from ..obs.context import active as _obs_active
from ..obs.context import maybe_span
from ..notations.ccd import ClusterCommunicationDiagram
from ..notations.mtd import ModeTransitionDiagram
from ..notations.std import StateTransitionDiagram
from .engine import (ClockGatedComponent, Simulator, StimulusSpec,
                     build_gated_ccd, run_stepped)
from .trace import SimulationTrace, first_difference

#: A compiled step: ``(inputs, state, tick) -> (outputs, next_state)``.
StepFunction = Callable[[Mapping[str, Any], Any, int], Tuple[Dict[str, Any], Any]]


class CompiledSchedule:
    """A component compiled into an executable schedule.

    ``step`` is the executable form; ``kind`` names the compilation strategy
    (``"composite"``, ``"gated"``, ``"mtd"``, ``"std"`` or ``"atomic"``) and
    ``children`` holds the compiled sub-schedules, so tests and tools can
    inspect what the compiler produced.
    """

    __slots__ = ("component", "kind", "step", "children")

    def __init__(self, component: Component, kind: str, step: StepFunction,
                 children: Optional[List[Tuple[str, "CompiledSchedule"]]] = None):
        self.component = component
        self.kind = kind
        self.step = step
        self.children = children or []

    def initial_state(self) -> Any:
        return self.component.initial_state()

    def linear_steps(self, prefix: str = "") -> List[Tuple[str, str]]:
        """The flattened schedule: ``(hierarchical path, kind)`` per node."""
        path = f"{prefix}/{self.component.name}" if prefix else self.component.name
        steps = [(path, self.kind)]
        for _, child in self.children:
            steps.extend(child.linear_steps(path))
        return steps

    def describe(self) -> str:
        """Human-readable rendering of the flattened schedule."""
        return "\n".join(f"{kind:>10}  {path}"
                         for path, kind in self.linear_steps())

    def __repr__(self) -> str:
        return (f"CompiledSchedule({self.component.name!r}, kind={self.kind!r}, "
                f"steps={len(self.linear_steps())})")


def compile_component(component: Component, verify: bool = False):
    """Compile *component* into a reusable execution schedule.

    Composite hierarchies (and clock-gated wrappers around them) with the
    default synchronous ``react`` compile to the flat schedule IR
    (:class:`~repro.simulation.schedule_ir.FlatSchedule`): one global,
    topologically ordered step program over slot-based environments, with
    gating predicates and correction barriers preserving the nested
    semantics exactly.  Everything else -- MTDs, STDs, atomic blocks,
    subclasses with a custom ``react`` -- compiles on the nested path
    (:func:`compile_nested`), which is also the per-subtree fallback the
    flattener embeds for unflattenable children.  Both schedule kinds share
    the ``(inputs, state, tick) -> (outputs, state)`` step contract and the
    ``linear_steps()`` / ``describe()`` naming contract.

    With ``verify=True`` the static-analysis engine
    (:mod:`repro.analysis.lint`) runs first -- model-level lint of the
    hierarchy plus, on the flat path, IR dataflow verification of the
    compiled program -- and any error finding raises
    :class:`~repro.core.errors.ValidationError` before a schedule is
    returned.
    """
    from .schedule_ir import compile_flat, is_flattenable
    if verify:
        from ..analysis.lint import lint_component, lint_flat_schedule
        lint_component(component).raise_on_errors()
    if is_flattenable(component):
        schedule = compile_flat(component)
        if verify:
            lint_flat_schedule(schedule).raise_on_errors()
        return schedule
    with maybe_span("compile.nested", component=component.name):
        return compile_nested(component)


def compile_nested(component: Component) -> CompiledSchedule:
    """Compile *component* into the nested (per-composite closure) schedule.

    This is the PR-4 compiled engine: each composite is one step closure
    over its sub-schedules.  It remains the reference compiled semantics --
    the flat IR is differentially tested against it -- the fallback for
    components the flattener cannot hoist, and the baseline the
    ``benchmarks/bench_flatten.py`` speedup gate measures against.
    """
    if isinstance(component, CompositeComponent) \
            and type(component).react is CompositeComponent.react:
        return _compile_composite(component)
    if isinstance(component, ClockGatedComponent) \
            and type(component).react is ClockGatedComponent.react:
        return _compile_gated(component)
    if isinstance(component, ModeTransitionDiagram) \
            and type(component).react is ModeTransitionDiagram.react:
        return _compile_mtd(component)
    if isinstance(component, StateTransitionDiagram) \
            and type(component).react is StateTransitionDiagram.react:
        return _compile_std(component)
    if isinstance(component, ExpressionComponent) \
            and type(component).react is ExpressionComponent.react:
        return _compile_expression(component)
    return _compile_atomic(component)


def _compile_atomic(component: Component) -> CompiledSchedule:
    """A component with its own ``react`` is already a single step."""
    return CompiledSchedule(component, "atomic", component.react)


def _compile_expression(component: ExpressionComponent) -> CompiledSchedule:
    """Specialized atomic step for expression blocks.

    The reference ``react`` copies the inputs into a fresh environment dict
    every tick; the evaluator never mutates its environment, and the input
    dicts built by the surrounding compiled composite (or simulator loop)
    are fresh per tick, so evaluating against *inputs* directly is
    observationally identical and saves one dict copy per block per tick.
    On top of that, the output expressions are lowered to closures
    (:mod:`repro.core.expr_compile`), removing the per-tick AST walk.
    """
    compiler = component._evaluator.compile  # noqa: SLF001 - same evaluator
    items = tuple((name, compiler(expression))
                  for name, expression in component.output_expressions.items())

    def step(inputs: Mapping[str, Any], state: Any,
             tick: int) -> Tuple[Dict[str, Any], Any]:
        return {name: compiled(inputs) for name, compiled in items}, state

    return CompiledSchedule(component, "atomic", step)


def _compile_composite(component: CompositeComponent) -> CompiledSchedule:
    """Flatten one composite into a linear step list over its plan."""
    plan = component.execution_plan()
    children = [(entry.name, compile_nested(component.subcomponent(entry.name)))
                for entry in plan.entries]
    steps = {name: schedule.step for name, schedule in children}
    for entry in plan.entries:
        sub = component.subcomponent(entry.name)
        if not sub.has_behavior():
            raise SimulationError(
                f"sub-component {entry.name!r} of {component.name!r} has no "
                f"executable behaviour")

    def _input_keys(entry):
        # Pre-allocate the (sub, port) lookup keys once per schedule instead
        # of building a tuple per port per tick on the hot path.
        return tuple((port_name, (entry.name, port_name))
                     for port_name in entry.input_names)

    entries = tuple((entry.name, steps[entry.name], _input_keys(entry),
                     entry.propagate) for entry in plan.entries)
    corrections = tuple((entry.name, steps[entry.name], _input_keys(entry))
                        for entry in plan.correction_entries())
    track_corrections = bool(corrections)
    boundary_propagate = plan.boundary_propagate
    delayed_seed = plan.delayed_seed
    delayed_commit = plan.delayed_commit
    boundary_outputs = plan.boundary_outputs
    output_names = tuple(component.output_names())
    initial_state = component.initial_state

    def step(inputs: Mapping[str, Any], state: Any,
             tick: int) -> Tuple[Dict[str, Any], Any]:
        if state is None:
            state = initial_state()
        sub_states: Dict[str, Any] = dict(state["subs"])
        delayed_buffers: Dict[str, Any] = dict(state["delayed"])

        port_values: Dict[Tuple[Optional[str], str], Any] = {}
        for name, value in inputs.items():
            port_values[(None, name)] = value
        for channel_name, dst_key, initial_value in delayed_seed:
            port_values[dst_key] = delayed_buffers.get(channel_name,
                                                       initial_value)
        for src_key, dst_key in boundary_propagate:
            if src_key in port_values:
                port_values[dst_key] = port_values[src_key]

        seen_inputs: Dict[str, Dict[str, Any]] = {}
        for sub_name, sub_step, input_keys, propagate in entries:
            sub_inputs = {port_name: port_values.get(key, ABSENT)
                          for port_name, key in input_keys}
            outputs, new_state = sub_step(sub_inputs,
                                          sub_states.get(sub_name), tick)
            if track_corrections:
                seen_inputs[sub_name] = sub_inputs
            sub_states[sub_name] = new_state
            for port_name, value in outputs.items():
                port_values[(sub_name, port_name)] = value
            for src_key, dst_key in propagate:
                if src_key in port_values:
                    port_values[dst_key] = port_values[src_key]

        # State-correction pass: a non-feedthrough sub-component evaluated
        # before its producers saw stale inputs in its state update; re-run
        # it from the original state with the final values (its outputs
        # cannot change, mirroring the reference interpreter).
        for sub_name, sub_step, input_keys in corrections:
            final_inputs = {port_name: port_values.get(key, ABSENT)
                            for port_name, key in input_keys}
            if final_inputs != seen_inputs[sub_name]:
                _, corrected_state = sub_step(
                    final_inputs, state["subs"].get(sub_name), tick)
                sub_states[sub_name] = corrected_state

        boundary: Dict[str, Any] = {name: ABSENT for name in output_names}
        for port_name, is_delayed, channel_name, initial_value, src_key \
                in boundary_outputs:
            if is_delayed:
                boundary[port_name] = delayed_buffers.get(channel_name,
                                                          initial_value)
            else:
                boundary[port_name] = port_values.get(src_key, ABSENT)

        for channel_name, src_key in delayed_commit:
            delayed_buffers[channel_name] = port_values.get(src_key, ABSENT)

        return boundary, {"subs": sub_states, "delayed": delayed_buffers}

    return CompiledSchedule(component, "composite", step, children)


def _compile_gated(component: ClockGatedComponent) -> CompiledSchedule:
    """Gate a compiled inner schedule by a cached clock pattern."""
    inner = compile_nested(component.inner)
    inner_step = inner.step
    pattern = component.clock.cached()
    output_names = tuple(component.output_names())
    initial_state = component.initial_state

    def step(inputs: Mapping[str, Any], state: Any,
             tick: int) -> Tuple[Dict[str, Any], Any]:
        if state is None:
            state = initial_state()
        if not pattern.at(tick):
            return {name: ABSENT for name in output_names}, state
        inner_outputs, inner_state = inner_step(inputs, state["inner"], tick)
        return dict(inner_outputs), {"inner": inner_state,
                                     "pattern_cache": state.get("pattern_cache")}

    return CompiledSchedule(component, "gated", step,
                            [(component.inner.name, inner)])


def _compile_mtd(component: ModeTransitionDiagram) -> CompiledSchedule:
    """Precompute per-mode transition tables and compile mode behaviours.

    Guards are lowered to closures and evaluated against the per-tick input
    dict directly: the reference ``react`` builds ``environment =
    dict(inputs)`` each tick, but the evaluator never mutates its
    environment and the input dicts are fresh per tick (see
    :func:`_compile_expression`), so the copy is pure overhead.
    """
    if not component.modes():
        raise ModelError(f"MTD {component.name!r} has no modes")
    compiler = component._evaluator.compile  # noqa: SLF001 - same evaluator
    children: List[Tuple[str, CompiledSchedule]] = []
    behaviors: Dict[str, Optional[Tuple[StepFunction, Tuple[str, ...]]]] = {}
    for mode in component.modes():
        if mode.behavior is None:
            behaviors[mode.name] = None
            continue
        compiled = compile_nested(mode.behavior)
        children.append((mode.name, compiled))
        behaviors[mode.name] = (compiled.step,
                                tuple(mode.behavior.input_names()))
    transition_table = {
        mode.name: tuple((compiler(t.guard), t.target, t.describe())
                         for t in component.transitions_from(mode.name))
        for mode in component.modes()}
    output_names = tuple(component.output_names())
    mode_port = (component.MODE_PORT if component.MODE_PORT in output_names
                 else None)
    initial_mode = component.initial_mode
    initial_state = component.initial_state

    def step(inputs: Mapping[str, Any], state: Any,
             tick: int) -> Tuple[Dict[str, Any], Any]:
        if state is None:
            state = initial_state()
        current = state["mode"] or initial_mode
        mode_states = dict(state["mode_states"])

        fired_description = None
        for guard, target, description in transition_table[current]:
            value = guard(inputs)
            if is_present(value) and bool(value):
                fired_description = description
                current = target
                break

        outputs: Dict[str, Any] = {name: ABSENT for name in output_names}
        behavior = behaviors[current]
        if behavior is not None:
            behavior_step, behavior_inputs = behavior
            sub_inputs = {name: inputs.get(name, ABSENT)
                          for name in behavior_inputs}
            mode_outputs, new_mode_state = behavior_step(
                sub_inputs, mode_states.get(current), tick)
            mode_states[current] = new_mode_state
            outputs.update(mode_outputs)
        if mode_port is not None:
            outputs[mode_port] = current

        return outputs, {"mode": current, "mode_states": mode_states,
                         "last_transition": fired_description}

    return CompiledSchedule(component, "mtd", step, children)


#: Action-target classification for compiled STD transitions.
_ASSIGN_VARIABLE, _ASSIGN_OUTPUT, _ASSIGN_INVALID = 0, 1, 2


def _compile_std(component: StateTransitionDiagram) -> CompiledSchedule:
    """Precompute per-state sorted transition tables with compiled guards,
    actions and emissions.

    Tick-for-tick identical to :meth:`StateTransitionDiagram.react`,
    including the invalid-action-target :class:`ModelError` path (classified
    at compile time, raised when the offending transition fires) and the
    ``state``-port emission precedence (explicit actions beat state
    emissions beat the automatic state-name emission).
    """
    if not component.states():
        raise ModelError(f"STD {component.name!r} has no states")
    compiler = component._evaluator.compile  # noqa: SLF001 - same evaluator
    component_name = component.name
    output_names = tuple(component.output_names())
    output_set = frozenset(output_names)
    variable_names = frozenset(component.variables())
    has_variables = bool(variable_names)
    state_port = (component.STATE_PORT if component.STATE_PORT in output_set
                  else None)

    transition_table: Dict[str, Tuple[Any, ...]] = {}
    emission_table: Dict[str, Tuple[Tuple[str, Any], ...]] = {}
    for std_state in component.states():
        rows = []
        for transition in component.transitions_from(std_state.name):
            actions = []
            for target_name, expression in transition.actions.items():
                if target_name in variable_names:
                    kind = _ASSIGN_VARIABLE
                elif target_name in output_set:
                    kind = _ASSIGN_OUTPUT
                else:
                    kind = _ASSIGN_INVALID
                actions.append((kind, target_name, compiler(expression)))
            rows.append((compiler(transition.guard), transition.target,
                         tuple(actions)))
        transition_table[std_state.name] = tuple(rows)
        # react() skips emissions to non-output names; filter at compile time
        emission_table[std_state.name] = tuple(
            (port_name, compiler(expression))
            for port_name, expression in std_state.emissions.items()
            if port_name in output_set)

    initial_state_name = component.initial_state_name
    initial_state = component.initial_state

    def step(inputs: Mapping[str, Any], state: Any,
             tick: int) -> Tuple[Dict[str, Any], Any]:
        if state is None:
            state = initial_state()
        current = state["state"] or initial_state_name
        variables = state["vars"]
        if has_variables:
            variables = dict(variables)
            environment = dict(variables)
            environment.update(inputs)
        else:
            # No local variables: guards/actions/emissions see the inputs
            # only, and the (empty) vars dict is never mutated.
            environment = inputs
        outputs: Dict[str, Any] = {name: ABSENT for name in output_names}

        fired = None
        for guard, target, actions in transition_table[current]:
            value = guard(environment)
            if is_present(value) and bool(value):
                fired = (target, actions)
                break

        variables_changed = False
        if fired is not None:
            target, actions = fired
            for kind, target_name, compiled in actions:
                result = compiled(environment)
                if kind == _ASSIGN_VARIABLE:
                    variables[target_name] = result
                    variables_changed = True
                elif kind == _ASSIGN_OUTPUT:
                    outputs[target_name] = result
                else:
                    raise ModelError(
                        f"action target {target_name!r} of STD "
                        f"{component_name!r} is neither a local variable nor "
                        "an output port")
            current = target

        if variables_changed:
            emission_environment = dict(variables)
            emission_environment.update(inputs)
        else:
            emission_environment = environment
        for port_name, compiled in emission_table[current]:
            if outputs[port_name] is ABSENT:
                outputs[port_name] = compiled(emission_environment)

        if state_port is not None and outputs[state_port] is ABSENT:
            outputs[state_port] = current

        return outputs, {"state": current, "vars": variables}

    return CompiledSchedule(component, "std", step)


#: Schedule backends accepted by :class:`CompiledSimulator` (sorted).
_BACKENDS = ("auto", "batch", "flat", "native", "nested")


class CompiledSimulator:
    """Drop-in replacement for :class:`Simulator` backed by a compiled schedule.

    The schedule is built once in the constructor; :meth:`run` may be called
    any number of times with different stimuli, which is what makes scenario
    sweeps cheap.  Semantics, including every error path, match the
    reference engine.

    *backend* selects the compilation strategy: ``"auto"`` (default) uses
    the flat schedule IR whenever the component is flattenable and the
    nested path otherwise; ``"flat"`` / ``"nested"`` force one of the two
    (``"flat"`` raises :class:`SimulationError` for unflattenable roots).
    ``"batch"`` additionally lowers the flat program onto the vectorized
    battery backend (:mod:`repro.simulation.batch_ir`, requires NumPy and a
    flattenable root): single runs go through a one-lane sweep, and batch-
    aware callers (:class:`ScenarioSuite`,
    :func:`repro.scenarios.runner.run_sharded`) execute whole batteries as
    single sweeps via :attr:`batch_schedule`.  ``"native"`` compiles the
    flat program to a C step function driven through ctypes
    (:mod:`repro.simulation.native`, requires a flattenable root and a C
    compiler); hosts without a compiler degrade to the flat interpreter
    with a warning.
    """

    def __init__(self, component: Component, check_types: bool = False,
                 backend: str = "auto"):
        if backend not in _BACKENDS:
            raise SimulationError(
                f"unknown schedule backend {backend!r} "
                f"(choose from {_BACKENDS})")
        if not component.has_behavior():
            raise SimulationError(
                f"component {component.name!r} has no executable behaviour and "
                "cannot be simulated (FAA components may be structure-only)")
        self.component = component
        self.check_types = check_types
        self.backend = backend
        self.batch_schedule = None
        with maybe_span("compile.component", component=component.name,
                        backend=backend) as span:
            if backend == "auto":
                self.schedule = compile_component(component)
            elif backend == "flat":
                from .schedule_ir import compile_flat
                self.schedule = compile_flat(component)
            elif backend == "batch":
                from .schedule_ir import compile_flat
                try:
                    from .batch_ir import BatchSchedule
                except ImportError as exc:
                    raise SimulationError(
                        "backend 'batch' requires numpy, which is not "
                        "installed") from exc
                self.schedule = compile_flat(component)
                self.batch_schedule = BatchSchedule(self.schedule)
            elif backend == "native":
                from .schedule_ir import compile_flat
                from .native import compile_native, native_available
                flat_schedule = compile_flat(component)
                if native_available():
                    self.schedule = compile_native(flat_schedule)
                else:
                    warnings.warn(
                        "backend 'native' requires a C compiler (cc/gcc/"
                        "clang); falling back to the flat interpreter",
                        RuntimeWarning, stacklevel=2)
                    self.schedule = flat_schedule
            else:
                self.schedule = compile_nested(component)
            if span is not None:
                span.attributes["kind"] = self.schedule.kind

    def run(self, stimuli: Optional[Mapping[str, StimulusSpec]] = None,
            ticks: int = 10) -> SimulationTrace:
        """Simulate for *ticks* ticks and return the recorded trace.

        With observability enabled (:mod:`repro.obs`) the run is wrapped in
        a tracing span, and -- when the session asked for ``profile_ops``
        or ``flight_recording`` and the schedule is a flat program --
        executed through a swapped-in step variant (op-profiling or
        flight-recording; recording wins when both are on).  Flight
        recording also overrides the vectorized batch backend: forensics
        needs per-tick slot environments, so recorded runs take the flat
        stepped path even when ``backend="batch"``.  The default path is
        untouched: ``schedule.step`` is the same closure whether or not
        :mod:`repro.obs` was ever enabled.
        """
        telemetry = _obs_active()
        recording = (telemetry is not None and telemetry.flight_recording
                     and hasattr(self.schedule, "recording_step"))
        if self.batch_schedule is not None and not recording:
            return self.batch_schedule.run_one(stimuli, ticks,
                                               self.check_types)
        if telemetry is None:
            return run_stepped(self.component, self.schedule.step, stimuli,
                               ticks, self.check_types,
                               initial_state=self.schedule.initial_state())
        step = telemetry.step_for(self.schedule) or self.schedule.step
        with telemetry.tracer.span("run", component=self.component.name,
                                   backend=self.backend, ticks=ticks,
                                   kind=self.schedule.kind):
            return run_stepped(self.component, step, stimuli, ticks,
                               self.check_types,
                               initial_state=self.schedule.initial_state())


def simulate_compiled(component: Component,
                      stimuli: Optional[Mapping[str, StimulusSpec]] = None,
                      ticks: int = 10,
                      check_types: bool = False) -> SimulationTrace:
    """Convenience wrapper: compile *component*, run once, return the trace."""
    return CompiledSimulator(component, check_types=check_types).run(stimuli,
                                                                     ticks)


def compile_ccd(ccd: ClusterCommunicationDiagram,
                check_types: bool = False) -> CompiledSimulator:
    """Compile the gated execution view of a CCD (cluster-rate gating)."""
    return CompiledSimulator(build_gated_ccd(ccd), check_types=check_types)


def simulate_ccd_compiled(ccd: ClusterCommunicationDiagram,
                          stimuli: Optional[Mapping[str, StimulusSpec]] = None,
                          ticks: int = 20,
                          check_types: bool = False) -> SimulationTrace:
    """Compiled counterpart of :func:`~repro.simulation.engine.simulate_ccd`."""
    return compile_ccd(ccd, check_types=check_types).run(stimuli, ticks)


class ScenarioSuite:
    """A batch of scenarios sharing one compiled schedule.

    This is the scenario-diversity axis of validation: sweep engine-mode
    sequences, event storms or randomized stimulus sets against the same
    model while paying the compilation cost once.

    *backend* is forwarded to :class:`CompiledSimulator`; with
    ``backend="batch"`` :meth:`run_all` executes the whole suite as one
    vectorized sweep instead of one run per scenario (identical traces,
    identical first-error propagation).
    """

    def __init__(self, component: Component, check_types: bool = False,
                 backend: str = "auto"):
        self.simulator = CompiledSimulator(component, check_types=check_types,
                                           backend=backend)
        self._scenarios: List[Tuple[str, Optional[Mapping[str, StimulusSpec]],
                                    int]] = []

    def add(self, name: str,
            stimuli: Optional[Mapping[str, StimulusSpec]] = None,
            ticks: int = 10) -> "ScenarioSuite":
        """Register a scenario; returns ``self`` for chaining."""
        if any(existing == name for existing, _, _ in self._scenarios):
            raise SimulationError(
                f"scenario suite already has a scenario {name!r}")
        if not isinstance(ticks, int) or isinstance(ticks, bool) or ticks <= 0:
            raise SimulationError(
                f"scenario {name!r} must run for a positive integer number "
                f"of ticks, got {ticks!r}")
        self._scenarios.append((name, stimuli, ticks))
        return self

    def names(self) -> List[str]:
        return [name for name, _, _ in self._scenarios]

    def scenarios(self) -> List[Any]:
        """The registered scenarios as :class:`repro.scenarios.Scenario`
        records (the batch format of the sharded runner)."""
        from ..scenarios.generators import Scenario
        return [Scenario(name, dict(stimuli or {}), ticks)
                for name, stimuli, ticks in self._scenarios]

    def __len__(self) -> int:
        return len(self._scenarios)

    def run_all(self) -> Dict[str, SimulationTrace]:
        """Run every scenario against the compiled schedule.

        With the batch backend the whole suite is one vectorized sweep; the
        first failing scenario (in registration order) re-raises its
        original exception, mirroring the serial loop.
        """
        if self.simulator.batch_schedule is not None:
            traces: Dict[str, SimulationTrace] = {}
            for outcome in self.simulator.batch_schedule.run_battery(
                    self._scenarios, check_types=self.simulator.check_types):
                if outcome.exception is not None:
                    raise outcome.exception
                traces[outcome.name] = outcome.trace
            return traces
        return {name: self.simulator.run(stimuli, ticks)
                for name, stimuli, ticks in self._scenarios}

    def run_parallel(self, max_workers: Optional[int] = None,
                     executor: str = "process") -> Dict[str, SimulationTrace]:
        """Shard the batch across a worker pool (same traces as
        :meth:`run_all`, in the same order).

        Delegates to :func:`repro.scenarios.runner.run_sharded`: worker
        processes receive the pickled *model* and recompile the schedule
        once each, so stimuli must be picklable for ``executor="process"``
        (the generators of :mod:`repro.scenarios.generators` are).  A
        failing scenario raises :class:`SimulationError` here, mirroring
        :meth:`run_all`'s behaviour of propagating the first error.
        """
        from ..scenarios.runner import run_sharded
        results = run_sharded(self.simulator.component, self.scenarios(),
                              max_workers=max_workers, executor=executor,
                              check_types=self.simulator.check_types,
                              backend=self.simulator.backend)
        traces: Dict[str, SimulationTrace] = {}
        for result in results:
            if result.error is not None:
                raise SimulationError(
                    f"scenario {result.name!r} failed during sharded run: "
                    f"{result.error}")
            traces[result.name] = result.trace
        return traces

    def verify_against_reference(self) -> Dict[str, Optional[Dict[str, Any]]]:
        """Differential check: compiled vs interpreter, per scenario.

        Returns the :func:`~repro.simulation.trace.first_difference` result
        for every scenario -- ``None`` everywhere means the engines agree
        tick-for-tick on all scenarios.
        """
        reference = Simulator(self.simulator.component,
                              check_types=self.simulator.check_types)
        differences: Dict[str, Optional[Dict[str, Any]]] = {}
        for name, stimuli, ticks in self._scenarios:
            compiled_trace = self.simulator.run(stimuli, ticks)
            reference_trace = reference.run(stimuli, ticks)
            difference = first_difference(reference_trace, compiled_trace)
            if difference is None \
                    and reference_trace.mode_history != compiled_trace.mode_history:
                difference = {"signal": "mode_history", "tick": None,
                              "first": reference_trace.mode_history,
                              "second": compiled_trace.mode_history}
            differences[name] = difference
        return differences
