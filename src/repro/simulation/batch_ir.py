"""The batch IR backend: one vectorized sweep per scenario battery.

The flat schedule (:mod:`repro.simulation.schedule_ir`) runs one scenario
per call: a linear op program over a flat slot environment, one Python
value per slot.  Scenario batteries run that program S times per tick --
yet the program, the slots and the tick structure are identical across
scenarios; only the values differ.  This module widens each slot to a
**lane row**: the per-tick environment becomes a ``(slot, scenario)``
NumPy object array, and the whole battery advances through each tick with
ONE pass over the op program.

Op lowering (1:1 with the flat program, so gate jump targets carry over):

* ``expr``      -- expression closures are recompiled into lane-masked
  ufunc chains (:mod:`repro.core.expr_batch`): one kernel call evaluates a
  node for every active scenario, with ABSENT threaded through the object
  lanes and short-circuit/conditional masks restricting evaluation to
  exactly the lanes the scalar engine would evaluate;
* ``copy`` / ``buf_read`` / ``buf_write`` -- slot copies become whole-row
  assignments;
* ``gate``      -- clock predicates depend on the tick only, so a silent
  clock skips the region for every lane at once;
* ``run`` / ``correct`` -- nested-fallback leaves (MTDs, STDs, atomic
  blocks, unflattenable composites) and correction barriers keep their
  per-scenario step closures and loop over the active lanes only.

**Active masks.**  Scenarios of unequal length share one sweep: a lane is
active while ``tick < its horizon``; finished and failed lanes simply drop
out of the mask.  Lane state (leaf states, delayed buffers, slot rows) is
strictly per-lane -- nothing is ever read across the scenario axis.

**Error parity without batch poisoning.**  The vectorized kernels promise
to raise whenever any active lane would raise under the scalar engine
(and to compute bit-identical values when none would).  On any raise the
sweep discards the half-done vectorized tick and re-runs that one tick
per active lane through ``FlatSchedule.step`` -- the scalar closures --
from the tick-start state.  Lanes that raise there record the *exact*
scalar exception (same type, message and tick) and leave the battery;
surviving lanes continue vectorized at the next tick.  Stimulus
validation runs through :func:`repro.simulation.engine.prepare_feeds`,
the same helper :func:`~repro.simulation.engine.run_stepped` uses, so
rejection messages are identical by construction.

Stimulus callables are materialized for the full horizon up front (one
draw sequence per lane, in lane order).  Deterministic ``tick -> value``
functions -- the de-facto contract of the sharded runner, which already
re-materializes generators per worker -- observe no difference.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.expr_batch import compile_batch_expression
from ..core.types import check_value
from ..core.values import ABSENT, Stream, is_absent
from ..obs.context import active as _obs_active
from ..obs.context import maybe_span
from .engine import StimulusSpec, prepare_feeds
from .schedule_ir import (OP_BUF_READ, OP_BUF_WRITE, OP_COPY, OP_CORRECT,
                          OP_EXPR, OP_GATE, OP_RUN, FlatSchedule, FlatState)
from .trace import SimulationTrace

#: One battery item: ``(name, stimuli, ticks)``.
BatteryItem = Tuple[str, Optional[Mapping[str, StimulusSpec]], int]


class LaneOutcome:
    """Per-scenario outcome of a batched sweep.

    Either a trace (success) or an error: *error* is formatted exactly like
    the sharded runner's :class:`~repro.scenarios.runner.ScenarioResult`
    error strings, and *exception* carries the original exception object so
    single-run entry points can re-raise it unchanged.  *mode_paths* is
    populated when the sweep ran with ``collect_modes=True``.
    """

    __slots__ = ("name", "trace", "error", "exception", "mode_paths")

    def __init__(self, name: str, trace: Optional[SimulationTrace] = None,
                 error: Optional[str] = None,
                 exception: Optional[BaseException] = None,
                 mode_paths: Optional[Dict[str, List[Any]]] = None):
        self.name = name
        self.trace = trace
        self.error = error
        self.exception = exception
        self.mode_paths = mode_paths

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"error={self.error!r}"
        return f"LaneOutcome({self.name!r}, {status})"


def _capture(exc: BaseException) -> Tuple[str, BaseException]:
    """Format a lane failure exactly like ``execute_scenario`` (call from
    inside the ``except`` block so the traceback is still current)."""
    detail = traceback.format_exc(limit=3).strip().splitlines()[-1]
    error = f"{type(exc).__name__}: {exc}" if str(exc) else detail
    return error, exc


def _absent_plane(rows: int, lanes: int) -> np.ndarray:
    plane = np.empty((rows, lanes), dtype=object)
    plane.fill(ABSENT)
    return plane


class BatchSchedule:
    """A :class:`~repro.simulation.schedule_ir.FlatSchedule` widened to
    execute whole scenario batteries as single vectorized sweeps."""

    kind = "batch"

    def __init__(self, flat: FlatSchedule):
        self.flat = flat
        self.component = flat.component
        with maybe_span("compile.batch_lower",
                        component=flat.component.name,
                        ops=len(flat.program)):
            self._program = self._lower(flat)

    def op_labels(self) -> List[Tuple[str, str, bool]]:
        """Op descriptors for :class:`repro.obs.profile.OpProfile` -- the
        batch program is index-identical to the flat one."""
        return self.flat.op_labels()

    # -- lowering ----------------------------------------------------------

    @staticmethod
    def _lower(flat: FlatSchedule) -> Tuple[Tuple[Any, ...], ...]:
        """Replace scalar expression closures with lane-masked batch kernels.

        The op list stays index-identical to ``flat.program`` (only the
        ``expr`` item closures change), so ``gate`` jump targets need no
        relocation.  Batch kernels are recompiled from the expression
        blocks' ASTs -- the flat program stores compiled scalar closures,
        which carry no AST to translate.
        """
        program: List[Tuple[Any, ...]] = []
        for op in flat.program:
            if op[0] != OP_EXPR:
                program.append(op)
                continue
            _, leaf_index, in_spec, items, post = op
            block = flat.leaves[leaf_index].component
            functions = block._evaluator.functions  # noqa: SLF001
            batch_items = tuple(
                (slot, compile_batch_expression(expression, functions))
                for (slot, _scalar), (_name, expression)
                in zip(items, block.output_expressions.items()))
            program.append((OP_EXPR, leaf_index, in_spec, batch_items, post))
        return tuple(program)

    # -- single-run entry point --------------------------------------------

    def run_one(self, stimuli: Optional[Mapping[str, StimulusSpec]],
                ticks: int, check_types: bool = False) -> SimulationTrace:
        """Run one scenario as a one-lane battery.

        Raises the original exception on failure -- the same exception, with
        the same message, that the scalar engines raise for this scenario.
        """
        outcome = self.run_battery((("scenario", stimuli, ticks),),
                                   check_types=check_types)[0]
        if outcome.exception is not None:
            raise outcome.exception
        return outcome.trace

    # -- the battery sweep -------------------------------------------------

    def run_battery(self, items: Sequence[BatteryItem],
                    check_types: bool = False,
                    collect_modes: bool = False) -> List[LaneOutcome]:
        """Execute a whole battery as one op-program sweep.

        Returns one :class:`LaneOutcome` per item, in battery order.  Every
        trace, error message, failure tick and mode history is identical to
        running the items one by one through the scalar engines.

        With observability enabled (:mod:`repro.obs`) the sweep is wrapped
        in a ``batch.sweep`` span, sweep-level counters (lanes, vectorized
        ticks, scalar-fallback activity, duration) land in the active
        registry, and -- under ``profile_ops`` -- the op program runs
        through a profiled variant feeding an op-level
        :class:`~repro.obs.profile.OpProfile`.  Disabled, the sweep binds
        the uninstrumented program loop once and pays nothing per tick.
        """
        telemetry = _obs_active()
        if telemetry is None:
            return self._run_battery(items, check_types, collect_modes, None)
        with telemetry.tracer.span("batch.sweep",
                                   component=self.component.name,
                                   lanes=len(items)):
            return self._run_battery(items, check_types, collect_modes,
                                     telemetry)

    def _run_battery(self, items: Sequence[BatteryItem], check_types: bool,
                     collect_modes: bool,
                     telemetry: Optional[Any]) -> List[LaneOutcome]:
        flat = self.flat
        component = self.component
        lanes = len(items)
        if lanes == 0:
            return []

        errors: List[Optional[str]] = [None] * lanes
        exceptions: List[Optional[BaseException]] = [None] * lanes
        #: prefill failures deferred to their tick (a step error on an
        #: earlier tick must win, exactly as in the scalar draw/step order)
        pending: List[Optional[Tuple[str, BaseException]]] = [None] * lanes
        requested = [0] * lanes
        horizons = np.zeros(lanes, dtype=np.int64)
        feeds_by_lane: List[Optional[Tuple[Any, ...]]] = [None] * lanes

        for index, (_name, stimuli, ticks) in enumerate(items):
            try:
                feeds_by_lane[index] = prepare_feeds(component, stimuli, ticks)
            except Exception as exc:  # noqa: BLE001 - per-lane isolation
                errors[index], exceptions[index] = _capture(exc)
            else:
                requested[index] = ticks
                horizons[index] = ticks

        input_names = component.input_names()
        input_spec = flat._input_spec  # noqa: SLF001 - same-package IR access
        output_spec = flat._output_spec  # noqa: SLF001
        n_scratch = flat._scratch_count  # noqa: SLF001
        horizon = int(horizons.max())

        in_rows = {name: _absent_plane(horizon, lanes) for name in input_names}
        out_rows = {name: _absent_plane(horizon, lanes)
                    for name, _slot in output_spec}

        # prefill the input planes lane by lane, tick-major and port-inner:
        # the exact draw (and type-check) sequence of run_stepped, so shared
        # generator instances see the serial draw order and the first
        # failing (tick, port) matches.  The failure is *pending* until the
        # sweep reaches its tick: the lane still runs the ticks before it.
        for index in range(lanes):
            feeds = feeds_by_lane[index]
            if feeds is None:
                continue
            tick = 0
            try:
                for tick in range(requested[index]):
                    for name, generator in feeds:
                        value = generator(tick) if generator is not None \
                            else ABSENT
                        if check_types and not is_absent(value):
                            check_value(
                                value, component.port(name).port_type,
                                context=f"{component.name}.{name}@t{tick}")
                        in_rows[name][tick, index] = value
            except Exception as exc:  # noqa: BLE001 - per-lane isolation
                pending[index] = _capture(exc)
                horizons[index] = tick

        leaves = flat.leaves
        n_leaves = len(leaves)
        n_buffers = len(flat.buffer_specs)
        states: List[List[Any]] = [
            [leaf.component.initial_state() for _ in range(lanes)]
            for leaf in leaves]
        buffers = np.empty((n_buffers, lanes), dtype=object)
        for buffer_index, spec in enumerate(flat.buffer_specs):
            row = buffers[buffer_index]
            for lane in range(lanes):
                row[lane] = spec[0]

        values = np.empty((flat.n_slots, lanes), dtype=object)
        live = np.array([error is None for error in errors], dtype=bool)
        histories: Optional[List[Dict[str, List[Any]]]] = \
            [{} for _ in range(lanes)] if collect_modes else None

        # telemetry: bound ONCE per sweep -- the disabled path binds the
        # uninstrumented program loop and never consults the context again
        profile = telemetry.profile_for(self) if telemetry is not None \
            else None
        registry = telemetry.registry if telemetry is not None else None
        if profile is None:
            run_program = self._run_program
        else:
            def run_program(*args: Any) -> None:
                self._run_program_profiled(profile, *args)
        vector_ticks = 0
        scalar_fallback_ticks = 0
        scalar_fallback_events = 0
        sweep_started = time.perf_counter() if registry is not None else 0.0

        for tick in range(horizon):
            active = live & (tick < horizons)
            if not active.any():
                continue
            indices = np.nonzero(active)[0].tolist()
            values.fill(ABSENT)
            for name, slot in input_spec:
                values[slot] = in_rows[name][tick]
            next_states = [row[:] for row in states]
            next_buffers = buffers.copy()
            scratch: List[Any] = [None] * n_scratch
            try:
                run_program(values, active, indices, tick, states,
                            next_states, buffers, next_buffers, scratch)
            except Exception:  # noqa: BLE001 - some lane needs the scalar path
                scalar_fallback_events += 1
                scalar_fallback_ticks += len(indices)
                if profile is not None:
                    profile.scalar_fallback_ticks += len(indices)
                self._scalar_tick(tick, indices, in_rows, out_rows, states,
                                  next_states, buffers, next_buffers,
                                  input_names, output_spec, live, errors,
                                  exceptions, n_buffers)
            else:
                vector_ticks += 1
                for name, slot in output_spec:
                    out_rows[name][tick] = values[slot]
            if histories is not None:
                for index in indices:
                    if not live[index]:
                        continue
                    lane_state = FlatState(
                        [next_states[leaf][index]
                         for leaf in range(n_leaves)], [])
                    for path, mode in flat.mode_paths(lane_state).items():
                        histories[index].setdefault(path, []).append(mode)
            if check_types:
                for index in indices:
                    if not live[index]:
                        continue
                    try:
                        for name, _slot in output_spec:
                            value = out_rows[name][tick, index]
                            if component.has_port(name) \
                                    and not is_absent(value):
                                check_value(
                                    value, component.port(name).port_type,
                                    context=f"{component.name}.{name}@t{tick}")
                    except Exception as exc:  # noqa: BLE001
                        errors[index], exceptions[index] = _capture(exc)
                        live[index] = False
            states = next_states
            buffers = next_buffers

        if registry is not None:
            registry.counter("batch.sweeps").inc()
            registry.counter("batch.lanes").inc(lanes)
            registry.counter("batch.vector_ticks").inc(vector_ticks)
            if scalar_fallback_events:
                registry.counter("batch.scalar_fallback_events").inc(
                    scalar_fallback_events)
                registry.counter("batch.scalar_fallback_ticks").inc(
                    scalar_fallback_ticks)
            registry.histogram("batch.sweep.duration_s").observe(
                time.perf_counter() - sweep_started)

        outcomes: List[LaneOutcome] = []
        for index, (name, _stimuli, _ticks) in enumerate(items):
            if errors[index] is None and pending[index] is not None:
                errors[index], exceptions[index] = pending[index]
            if errors[index] is not None:
                outcomes.append(LaneOutcome(name, error=errors[index],
                                            exception=exceptions[index]))
                continue
            trace = SimulationTrace(component.name)
            ticks = requested[index]
            trace.ticks = ticks
            if ticks:
                for port_name in input_names:
                    trace.inputs[port_name] = Stream(
                        in_rows[port_name][:ticks, index].tolist())
                for port_name, _slot in output_spec:
                    trace.outputs[port_name] = Stream(
                        out_rows[port_name][:ticks, index].tolist())
            outcomes.append(LaneOutcome(
                name, trace=trace,
                mode_paths=histories[index] if histories is not None
                else None))
        return outcomes

    # -- one vectorized tick -----------------------------------------------

    def _run_program(self, values: np.ndarray, active: np.ndarray,
                     indices: List[int], tick: int,
                     prev_states: List[List[Any]],
                     next_states: List[List[Any]], prev_buffers: np.ndarray,
                     next_buffers: np.ndarray, scratch: List[Any]) -> None:
        """Advance every active lane by one tick, vectorized.

        Mirrors ``FlatSchedule._make_step`` op for op; any exception leaves
        the planes half-written and the caller re-runs the tick through the
        scalar path (from the untouched ``prev_*`` planes).
        """
        program = self._program
        n_ops = len(program)
        pc = 0
        while pc < n_ops:
            op = program[pc]
            pc += 1
            code = op[0]
            if code == OP_EXPR:
                _, _leaf, in_spec, items, post = op
                env = {name: values[slot] for name, slot in in_spec}
                for slot, fn in items:
                    if slot >= 0:
                        values[slot] = fn(env, active)
                    else:
                        fn(env, active)
                for src, dst in post:
                    values[dst] = values[src]
            elif code == OP_RUN:
                _, leaf_index, fn, in_spec, out_spec, post, si = op
                prev_row = prev_states[leaf_index]
                next_row = next_states[leaf_index]
                lane_inputs = None
                if si >= 0:
                    lane_inputs = scratch[si] = {}
                for lane in indices:
                    sub_inputs = {name: values[slot, lane]
                                  for name, slot in in_spec}
                    outputs, new_state = fn(sub_inputs, prev_row[lane], tick)
                    next_row[lane] = new_state
                    for name, slot in out_spec:
                        values[slot, lane] = outputs.get(name, ABSENT)
                    if lane_inputs is not None:
                        lane_inputs[lane] = sub_inputs
                for src, dst in post:
                    values[dst] = values[src]
            elif code == OP_COPY:
                for src, dst in op[1]:
                    values[dst] = values[src]
            elif code == OP_BUF_READ:
                for index, dst in op[1]:
                    values[dst] = prev_buffers[index]
            elif code == OP_GATE:
                # clock predicates see the tick only: one decision per tick
                # gates the region for every lane at once
                if not op[1](tick):
                    pc = op[2]
            elif code == OP_BUF_WRITE:
                for src, index in op[1]:
                    next_buffers[index] = values[src]
            else:  # OP_CORRECT
                for si, leaf_index, fn, in_spec in op[1]:
                    lane_inputs = scratch[si]
                    prev_row = prev_states[leaf_index]
                    next_row = next_states[leaf_index]
                    for lane in indices:
                        final = {name: values[slot, lane]
                                 for name, slot in in_spec}
                        if final != lane_inputs[lane]:
                            _, corrected = fn(final, prev_row[lane], tick)
                            next_row[lane] = corrected

    def _run_program_profiled(self, profile: Any, values: np.ndarray,
                              active: np.ndarray, indices: List[int],
                              tick: int, prev_states: List[List[Any]],
                              next_states: List[List[Any]],
                              prev_buffers: np.ndarray,
                              next_buffers: np.ndarray,
                              scratch: List[Any],
                              clock: Any = time.perf_counter) -> None:
        """``_run_program`` with per-op attribution into *profile*.

        An exact mirror of :meth:`_run_program` -- any semantic change there
        MUST be replicated here (``tests/test_obs.py`` checks trace
        equivalence between the two).  Bound only under ``profile_ops``; the
        default sweep never routes through this method.
        """
        program = self._program
        n_ops = len(program)
        counts = profile.counts
        times = profile.times
        gate_skips = profile.gate_skips
        tick_started = clock()
        pc = 0
        while pc < n_ops:
            op = program[pc]
            index = pc
            pc += 1
            code = op[0]
            op_started = clock()
            if code == OP_EXPR:
                _, _leaf, in_spec, items, post = op
                env = {name: values[slot] for name, slot in in_spec}
                for slot, fn in items:
                    if slot >= 0:
                        values[slot] = fn(env, active)
                    else:
                        fn(env, active)
                for src, dst in post:
                    values[dst] = values[src]
            elif code == OP_RUN:
                _, leaf_index, fn, in_spec, out_spec, post, si = op
                prev_row = prev_states[leaf_index]
                next_row = next_states[leaf_index]
                lane_inputs = None
                if si >= 0:
                    lane_inputs = scratch[si] = {}
                for lane in indices:
                    sub_inputs = {name: values[slot, lane]
                                  for name, slot in in_spec}
                    outputs, new_state = fn(sub_inputs, prev_row[lane], tick)
                    next_row[lane] = new_state
                    for name, slot in out_spec:
                        values[slot, lane] = outputs.get(name, ABSENT)
                    if lane_inputs is not None:
                        lane_inputs[lane] = sub_inputs
                for src, dst in post:
                    values[dst] = values[src]
            elif code == OP_COPY:
                for src, dst in op[1]:
                    values[dst] = values[src]
            elif code == OP_BUF_READ:
                for index_, dst in op[1]:
                    values[dst] = prev_buffers[index_]
            elif code == OP_GATE:
                if not op[1](tick):
                    pc = op[2]
                    gate_skips[index] += 1
            elif code == OP_BUF_WRITE:
                for src, index_ in op[1]:
                    next_buffers[index_] = values[src]
            else:  # OP_CORRECT
                for si, leaf_index, fn, in_spec in op[1]:
                    lane_inputs = scratch[si]
                    prev_row = prev_states[leaf_index]
                    next_row = next_states[leaf_index]
                    for lane in indices:
                        final = {name: values[slot, lane]
                                 for name, slot in in_spec}
                        if final != lane_inputs[lane]:
                            _, corrected = fn(final, prev_row[lane], tick)
                            next_row[lane] = corrected
                            profile.correction_reruns += 1
            times[index] += clock() - op_started
            counts[index] += 1
        profile.ticks += 1
        profile.total_time_s += clock() - tick_started

    # -- the scalar fallback tick -------------------------------------------

    def _scalar_tick(self, tick: int, indices: List[int],
                     in_rows: Dict[str, np.ndarray],
                     out_rows: Dict[str, np.ndarray],
                     states: List[List[Any]], next_states: List[List[Any]],
                     buffers: np.ndarray, next_buffers: np.ndarray,
                     input_names: Sequence[str],
                     output_spec: Tuple[Tuple[str, int], ...], live: np.ndarray,
                     errors: List[Optional[str]],
                     exceptions: List[Optional[BaseException]],
                     n_buffers: int) -> None:
        """Re-run one tick per active lane through the scalar flat step.

        Runs from the tick-start state (``states``/``buffers`` are never
        touched by the aborted vectorized attempt), so each lane reproduces
        exactly what the scalar engine computes at this tick: identical
        outputs and next states for healthy lanes, the identical exception
        -- type, message, tick -- for failing ones, which leave the sweep
        without disturbing their neighbours.
        """
        step = self.flat.step
        n_leaves = len(states)
        for lane in indices:
            inputs = {name: in_rows[name][tick, lane] for name in input_names}
            lane_state = FlatState(
                [states[leaf][lane] for leaf in range(n_leaves)],
                [buffers[buffer_index, lane]
                 for buffer_index in range(n_buffers)])
            try:
                outputs, new_state = step(inputs, lane_state, tick)
            except Exception as exc:  # noqa: BLE001 - per-lane isolation
                errors[lane], exceptions[lane] = _capture(exc)
                live[lane] = False
                continue
            for leaf in range(n_leaves):
                next_states[leaf][lane] = new_state.leaf_states[leaf]
            for buffer_index in range(n_buffers):
                next_buffers[buffer_index, lane] = \
                    new_state.buffers[buffer_index]
            for name, _slot in output_spec:
                out_rows[name][tick, lane] = outputs[name]

    def __repr__(self) -> str:
        return (f"BatchSchedule({self.component.name!r}, "
                f"ops={len(self._program)}, slots={self.flat.n_slots})")


def compile_batch(component: Any) -> BatchSchedule:
    """Compile *component* into a :class:`BatchSchedule` (via the flat IR).

    Raises :class:`~repro.core.errors.SimulationError` for unflattenable
    roots, exactly like :func:`~repro.simulation.schedule_ir.compile_flat`.
    """
    from .schedule_ir import compile_flat
    return BatchSchedule(compile_flat(component))
