"""State Transition Diagrams (STD) -- paper Sec. 3.2.

STDs are extended finite state machines similar to the popular Statecharts
notation, "but with some syntactic restrictions for excluding certain
semantic ambiguities allowed by some standard Statecharts dialects".  The
restrictions adopted here are:

* **flat state space** -- no hierarchical or orthogonal states,
* **no inter-level transitions** (trivially, because states are flat),
* **deterministic firing** -- transitions leaving a state are totally ordered
  by an explicit priority; at most one fires per tick,
* **no instantaneous self-triggering** -- a transition fires on the messages
  of the current tick only, never on outputs produced in the same tick.

A transition carries a guard (base-language expression over input ports and
local variables) and a list of actions: assignments to output ports or local
variables, all evaluated against the *pre*-state environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..core.components import Component
from ..core.errors import ModelError, UnknownElementError
from ..core.expr_eval import ExpressionEvaluator
from ..core.expr_parser import parse_expression
from ..core.expressions import Expression
from ..core.validation import RuleSet, ValidationReport
from ..core.values import ABSENT, is_present


@dataclass
class STDState:
    """A (flat) control state of an STD."""

    name: str
    description: str = ""
    #: output-port assignments applied at every tick spent in this state
    emissions: Dict[str, Expression] = field(default_factory=dict)


@dataclass
class STDTransition:
    """A guarded, prioritised transition with assignment actions."""

    source: str
    target: str
    guard: Expression
    actions: Dict[str, Expression] = field(default_factory=dict)
    priority: int = 0
    description: str = ""

    def describe(self) -> str:
        acts = ", ".join(f"{k} := {v.to_source()}" for k, v in self.actions.items())
        suffix = f" / {acts}" if acts else ""
        return f"{self.source} --[{self.guard.to_source()}]{suffix}--> {self.target}"


class StateTransitionDiagram(Component):
    """An extended finite state machine with the AutoMoDe restrictions."""

    notation = "STD"
    STATE_PORT = "state"

    def __init__(self, name: str, description: str = "",
                 evaluator: Optional[ExpressionEvaluator] = None):
        super().__init__(name, description)
        self._states: Dict[str, STDState] = {}
        self._transitions: List[STDTransition] = []
        #: per-state sorted outgoing transitions, invalidated by add_transition
        self._outgoing_cache: Dict[str, Tuple[STDTransition, ...]] = {}
        self._initial_state: Optional[str] = None
        self._variables: Dict[str, Any] = {}
        self._evaluator = evaluator or ExpressionEvaluator()

    # -- construction -----------------------------------------------------------
    def add_state(self, name: str, initial: bool = False, description: str = "",
                  emissions: Optional[Mapping[str, Any]] = None) -> STDState:
        """Declare a control state; the first one becomes the initial state."""
        if name in self._states:
            raise ModelError(f"STD {self.name!r} already has a state {name!r}")
        parsed_emissions: Dict[str, Expression] = {}
        for port_name, expr in (emissions or {}).items():
            parsed_emissions[port_name] = self._parse(expr)
        state = STDState(name, description, parsed_emissions)
        self._states[name] = state
        if initial or self._initial_state is None:
            self._initial_state = name
        return state

    def add_variable(self, name: str, initial: Any) -> None:
        """Declare a local (extended-state) variable with an initial value."""
        if name in self._variables:
            raise ModelError(f"STD {self.name!r} already has a variable {name!r}")
        self._variables[name] = initial

    def add_transition(self, source: str, target: str, guard: Any,
                       actions: Optional[Mapping[str, Any]] = None,
                       priority: int = 0, description: str = "") -> STDTransition:
        for state_name in (source, target):
            if state_name not in self._states:
                raise UnknownElementError(
                    f"STD {self.name!r} has no state {state_name!r}")
        parsed_actions = {name: self._parse(expr)
                          for name, expr in (actions or {}).items()}
        transition = STDTransition(source, target, self._parse(guard),
                                   parsed_actions, priority, description)
        self._transitions.append(transition)
        self._outgoing_cache.pop(source, None)
        return transition

    @staticmethod
    def _parse(expression: Any) -> Expression:
        if isinstance(expression, str):
            return parse_expression(expression)
        if isinstance(expression, Expression):
            return expression
        raise ModelError("guards and actions must be base-language expressions")

    # -- queries ------------------------------------------------------------------
    @property
    def initial_state_name(self) -> Optional[str]:
        return self._initial_state

    def set_initial_state(self, name: str) -> None:
        if name not in self._states:
            raise UnknownElementError(f"STD {self.name!r} has no state {name!r}")
        self._initial_state = name

    def states(self) -> List[STDState]:
        return list(self._states.values())

    def state_names(self) -> List[str]:
        return list(self._states.keys())

    def variables(self) -> Dict[str, Any]:
        return dict(self._variables)

    def transitions(self) -> List[STDTransition]:
        return list(self._transitions)

    def transitions_from(self, state_name: str) -> List[STDTransition]:
        return list(self._outgoing(state_name))

    def _outgoing(self, state_name: str) -> Tuple[STDTransition, ...]:
        """Sorted outgoing transitions, cached so ``react`` stops re-filtering
        and re-sorting the full transition list every tick."""
        cached = self._outgoing_cache.get(state_name)
        if cached is None:
            outgoing = [t for t in self._transitions if t.source == state_name]
            outgoing.sort(key=lambda t: -t.priority)
            cached = tuple(outgoing)
            self._outgoing_cache[state_name] = cached
        return cached

    def reachable_states(self) -> Set[str]:
        if self._initial_state is None:
            return set()
        reachable = {self._initial_state}
        frontier = [self._initial_state]
        while frontier:
            current = frontier.pop()
            for transition in self._transitions:
                if transition.source == current and transition.target not in reachable:
                    reachable.add(transition.target)
                    frontier.append(transition.target)
        return reachable

    # -- behaviour -------------------------------------------------------------------
    def has_behavior(self) -> bool:
        return bool(self._states)

    def initial_state(self) -> Any:
        return {"state": self._initial_state, "vars": dict(self._variables)}

    def react(self, inputs: Mapping[str, Any], state: Any,
              tick: int) -> Tuple[Dict[str, Any], Any]:
        if not self._states:
            raise ModelError(f"STD {self.name!r} has no states")
        if state is None:
            state = self.initial_state()
        current = state["state"] or self._initial_state
        variables = dict(state["vars"])

        environment: Dict[str, Any] = dict(variables)
        environment.update(inputs)
        outputs: Dict[str, Any] = {name: ABSENT for name in self.output_names()}

        fired: Optional[STDTransition] = None
        for transition in self._outgoing(current):
            value = self._evaluator.evaluate(transition.guard, environment)
            if is_present(value) and bool(value):
                fired = transition
                break

        if fired is not None:
            for name, expression in fired.actions.items():
                result = self._evaluator.evaluate(expression, environment)
                if name in self._variables:
                    variables[name] = result
                elif name in self.output_names():
                    outputs[name] = result
                else:
                    raise ModelError(
                        f"action target {name!r} of STD {self.name!r} is neither "
                        "a local variable nor an output port")
            current = fired.target

        # State emissions of the (possibly new) state, not overriding
        # explicit transition actions.
        emission_env = dict(variables)
        emission_env.update(inputs)
        for name, expression in self._states[current].emissions.items():
            if name in self.output_names() and outputs.get(name, ABSENT) is ABSENT:
                outputs[name] = self._evaluator.evaluate(expression, emission_env)

        if self.STATE_PORT in self.output_names() and outputs.get(
                self.STATE_PORT, ABSENT) is ABSENT:
            outputs[self.STATE_PORT] = current

        return outputs, {"state": current, "vars": variables}

    # -- validation -----------------------------------------------------------------
    def validate(self) -> ValidationReport:
        """Check the STD restrictions and well-formedness rules."""
        return STD_RULES.apply(self, subject=f"STD {self.name!r}")


STD_RULES = RuleSet("std")


@STD_RULES.rule("std-nonempty")
def _rule_nonempty(std: StateTransitionDiagram, report: ValidationReport) -> None:
    if not std.states():
        report.error("std-nonempty", "the STD declares no states", element=std.name)


@STD_RULES.rule("std-guard-names")
def _rule_guard_names(std: StateTransitionDiagram, report: ValidationReport) -> None:
    """Guards/actions may only use input ports and declared local variables."""
    known = set(std.input_names()) | set(std.variables())
    for transition in std.transitions():
        used = set(transition.guard.variables())
        for expression in transition.actions.values():
            used |= set(expression.variables())
        unknown = used - known
        if unknown:
            report.error("std-guard-names",
                         f"transition {transition.describe()} uses unknown "
                         f"names {sorted(unknown)}",
                         element=f"{transition.source}->{transition.target}")


@STD_RULES.rule("std-action-targets")
def _rule_action_targets(std: StateTransitionDiagram, report: ValidationReport) -> None:
    targets = set(std.output_names()) | set(std.variables())
    for transition in std.transitions():
        for name in transition.actions:
            if name not in targets:
                report.error("std-action-targets",
                             f"action assigns to {name!r} which is neither an "
                             "output port nor a local variable",
                             element=f"{transition.source}->{transition.target}")


@STD_RULES.rule("std-determinism")
def _rule_determinism(std: StateTransitionDiagram, report: ValidationReport) -> None:
    """Equal-priority transitions from the same state must not share a guard."""
    seen: Dict[Tuple[str, int, str], str] = {}
    for transition in std.transitions():
        key = (transition.source, transition.priority, transition.guard.to_source())
        if key in seen and seen[key] != transition.target:
            report.error("std-determinism",
                         f"ambiguous transitions from state {transition.source!r} "
                         f"with guard {transition.guard.to_source()}",
                         element=transition.source)
        seen[key] = transition.target


@STD_RULES.rule("std-reachability")
def _rule_reachability(std: StateTransitionDiagram, report: ValidationReport) -> None:
    reachable = std.reachable_states()
    for state in std.states():
        if state.name not in reachable:
            report.warning("std-reachability",
                           f"state {state.name!r} is unreachable from "
                           f"{std.initial_state_name!r}",
                           element=state.name)
