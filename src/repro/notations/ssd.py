"""System Structure Diagrams (SSD) -- paper Sec. 3.1, Fig. 4.

SSDs describe the high-level architectural decomposition of a system: a
network of typed components with statically typed message-passing ports,
connected by explicit channels.  Components can be recursively defined by
other SSDs or by behavioural notations (DFD, MTD, STD).

Two properties distinguish SSDs from DFDs:

* ports are **statically typed** -- a complete interface specification,
* each SSD-level channel between sub-components introduces a **unit message
  delay** ("each SSD-level channel introduces a message delay", Sec. 3.1),
  which later facilitates deployment because the delay defines the deadline
  of the implementing computation.

On the FAA level it is legal for components to have no behaviour at all
(only structure and interfaces); the validation rules therefore distinguish
structural errors from missing behaviour.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..core.clocks import BASE_CLOCK, Clock
from ..core.components import Component, CompositeComponent
from ..core.errors import ModelError
from ..core.ports import Port
from ..core.types import ANY, Type, is_assignable
from ..core.validation import RuleSet, ValidationReport
from ..core.values import ABSENT


class SSDComponent(CompositeComponent):
    """A component whose decomposition is given by an SSD.

    The class is a :class:`CompositeComponent` with delayed channel semantics
    between sub-components.  Sub-components may be other SSDs, DFDs, MTDs,
    STDs or atomic blocks.
    """

    notation = "SSD"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description, delayed_channels_by_default=True)

    def add_typed_input(self, name: str, port_type: Type,
                        clock: Clock = BASE_CLOCK, description: str = "") -> Port:
        """Declare a statically typed input port (SSD ports must be typed)."""
        if port_type is ANY:
            raise ModelError(
                f"SSD port {name!r} of {self.name!r} must be statically typed")
        return self.add_input(name, port_type, clock, description)

    def add_typed_output(self, name: str, port_type: Type,
                         clock: Clock = BASE_CLOCK, description: str = "") -> Port:
        """Declare a statically typed output port."""
        if port_type is ANY:
            raise ModelError(
                f"SSD port {name!r} of {self.name!r} must be statically typed")
        return self.add_output(name, port_type, clock, description)

    def connect_delayed(self, source: str, destination: str,
                        initial_value: Any = ABSENT,
                        name: Optional[str] = None):
        """Connect two sub-component ports with an explicit SSD delay."""
        return self.connect(source, destination, name=name, delayed=True,
                            initial_value=initial_value)

    # -- validation -----------------------------------------------------------
    def validate(self, require_behavior: bool = False) -> ValidationReport:
        """Check the SSD well-formedness rules.

        With ``require_behavior`` (FDA level) every atomic sub-component must
        have an executable behaviour; without it (FAA level) unspecified
        behaviour is only reported as information.
        """
        report = SSD_RULES.apply(self, subject=f"SSD {self.name!r}")
        if require_behavior:
            for component in self.subcomponents():
                if not component.has_behavior():
                    report.error(
                        "ssd-behavior-required",
                        f"sub-component {component.name!r} has no behaviour "
                        "but the FDA level requires behavioural completeness",
                        element=component.name)
        else:
            for component in self.subcomponents():
                if not component.has_behavior():
                    report.info(
                        "ssd-behavior-unspecified",
                        f"sub-component {component.name!r} leaves its "
                        "behaviour unspecified (allowed on the FAA level)",
                        element=component.name)
        return report


SSD_RULES = RuleSet("ssd")


@SSD_RULES.rule("ssd-static-typing")
def _rule_static_typing(ssd: SSDComponent, report: ValidationReport) -> None:
    """All SSD-level ports (own and sub-component) must be statically typed."""
    for port in ssd.ports():
        if not port.is_statically_typed():
            report.error("ssd-static-typing",
                         f"boundary port {port.name!r} is not statically typed",
                         element=port.qualified_name)
    for component in ssd.subcomponents():
        for port in component.ports():
            if not port.is_statically_typed():
                report.warning(
                    "ssd-static-typing",
                    f"port {port.qualified_name!r} is dynamically typed; SSD "
                    "interfaces should be statically typed",
                    element=port.qualified_name)


@SSD_RULES.rule("ssd-type-compatibility")
def _rule_type_compatibility(ssd: SSDComponent, report: ValidationReport) -> None:
    """Channel source types must be assignable to destination types."""
    for channel in ssd.channels():
        source_port = _resolve_port(ssd, channel.source.component,
                                    channel.source.port)
        dest_port = _resolve_port(ssd, channel.destination.component,
                                  channel.destination.port)
        if source_port is None or dest_port is None:
            report.error("ssd-type-compatibility",
                         f"channel {channel.name!r} references an unknown port",
                         element=channel.name)
            continue
        if not is_assignable(source_port.port_type, dest_port.port_type):
            report.error(
                "ssd-type-compatibility",
                f"channel {channel.name!r} connects {source_port.port_type!r} "
                f"to incompatible {dest_port.port_type!r}",
                element=channel.name)


@SSD_RULES.rule("ssd-connectivity")
def _rule_connectivity(ssd: SSDComponent, report: ValidationReport) -> None:
    """Every sub-component input should be driven; outputs should be used."""
    driven = {channel.destination.key for channel in ssd.channels()}
    used = {channel.source.key for channel in ssd.channels()}
    for component in ssd.subcomponents():
        for port in component.input_ports():
            if (component.name, port.name) not in driven:
                report.warning("ssd-connectivity",
                               f"input port {port.qualified_name!r} is not "
                               "connected to any channel",
                               element=port.qualified_name)
        for port in component.output_ports():
            if (component.name, port.name) not in used:
                report.info("ssd-connectivity",
                            f"output port {port.qualified_name!r} is unused",
                            element=port.qualified_name)
    for port in ssd.output_ports():
        if (None, port.name) not in driven:
            report.warning("ssd-connectivity",
                           f"boundary output {port.name!r} is never driven",
                           element=port.name)


@SSD_RULES.rule("ssd-delay-semantics")
def _rule_delay_semantics(ssd: SSDComponent, report: ValidationReport) -> None:
    """Channels between sub-components should carry the SSD unit delay."""
    for channel in ssd.channels():
        internal = (not channel.source.is_boundary()
                    and not channel.destination.is_boundary())
        if internal and not channel.delayed:
            report.warning(
                "ssd-delay-semantics",
                f"internal channel {channel.name!r} is instantaneous; SSD "
                "composition normally introduces a message delay",
                element=channel.name,
                suggestion="mark the channel as delayed or move the "
                           "connection into a DFD")


def _resolve_port(ssd: SSDComponent, component_name: Optional[str],
                  port_name: str) -> Optional[Port]:
    try:
        if component_name is None:
            return ssd.port(port_name)
        return ssd.subcomponent(component_name).port(port_name)
    except Exception:  # noqa: BLE001 - resolution failure handled by caller
        return None


def interface_signature(component: Component) -> List[str]:
    """Human-readable, sorted interface summary (used in reports and tests)."""
    entries = []
    for port in component.ports():
        clock = port.clock.expression()
        entries.append(f"{port.direction} {port.name}: {port.port_type!r} @ {clock}")
    return sorted(entries)
