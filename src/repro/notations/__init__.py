"""The graphical notations of AutoMoDe as programmatic model views.

* :mod:`repro.notations.ssd` -- System Structure Diagrams (FAA/FDA structure)
* :mod:`repro.notations.dfd` -- Data Flow Diagrams (algorithmic behaviour)
* :mod:`repro.notations.mtd` -- Mode Transition Diagrams (explicit modes)
* :mod:`repro.notations.std` -- State Transition Diagrams (restricted EFSMs)
* :mod:`repro.notations.ccd` -- Cluster Communication Diagrams (LA level)
* :mod:`repro.notations.blocks` -- the discrete-time block library
"""

from .blocks import (BLOCK_LIBRARY, Add, Constant, Counter, EdgeDetector,
                     Every, Gain, Hold, Hysteresis, Integrator, Limit,
                     LookupTable1D, Multiply, PIDController, RateLimiter,
                     Subtract, Switch, UnitDelay, When, library_block)
from .ccd import (CCD_RULES, Cluster, ClusterCommunicationDiagram)
from .dfd import DFD_RULES, DataFlowDiagram
from .mtd import MTD_RULES, Mode, ModeTransition, ModeTransitionDiagram
from .ssd import SSD_RULES, SSDComponent, interface_signature
from .std import (STD_RULES, STDState, STDTransition, StateTransitionDiagram)

__all__ = [
    "Add", "BLOCK_LIBRARY", "CCD_RULES", "Cluster",
    "ClusterCommunicationDiagram", "Constant", "Counter", "DFD_RULES",
    "DataFlowDiagram", "EdgeDetector", "Every", "Gain", "Hold", "Hysteresis",
    "Integrator", "Limit", "LookupTable1D", "MTD_RULES", "Mode",
    "ModeTransition", "ModeTransitionDiagram", "Multiply", "PIDController",
    "RateLimiter", "SSD_RULES", "SSDComponent", "STDState", "STDTransition",
    "STD_RULES", "StateTransitionDiagram", "Subtract", "Switch", "UnitDelay",
    "When", "interface_signature", "library_block",
]
