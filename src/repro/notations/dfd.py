"""Data Flow Diagrams (DFD) -- paper Sec. 3.2, Fig. 5.

DFDs define the algorithmic computation of a component.  They are built from
blocks with *dynamically typed* ports connected by channels whose default
semantics is *instantaneous* in the sense of synchronous languages.  Blocks
may be recursively defined by other DFDs; atomic blocks are defined by an
MTD, an STD, or directly by a base-language expression (e.g. the ``ADD``
block of Fig. 5 is ``ch1 + ch2 + ch3``).

The AutoMoDe tool prototype accompanies instantaneous communication with a
causality check for detecting instantaneous loops; this is available here as
:meth:`DataFlowDiagram.check_causality` (and through
:mod:`repro.simulation.causality` for whole hierarchies).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..core.components import (Component, CompositeComponent,
                               ExpressionComponent)
from ..core.errors import CausalityError
from ..core.types import ANY, Type, unify
from ..core.validation import RuleSet, ValidationReport


class DataFlowDiagram(CompositeComponent):
    """A component defined by a network of blocks with instantaneous channels."""

    notation = "DFD"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description, delayed_channels_by_default=False)

    # -- construction helpers ----------------------------------------------------
    def add_expression_block(self, name: str,
                             output_expressions: Mapping[str, str]) -> ExpressionComponent:
        """Create an atomic block from base-language expressions and add it.

        The block's interface is derived from the expressions: every free
        variable becomes an input port, every expression an output port.
        """
        block = ExpressionComponent(name, output_expressions)
        block.declare_interface_from_expressions()
        self.add_subcomponent(block)
        return block

    # -- causality (paper Sec. 3.2) ----------------------------------------------
    def check_causality(self) -> List[str]:
        """Return the instantaneous evaluation order, or raise.

        Raises :class:`~repro.core.errors.CausalityError` if the blocks form
        an instantaneous loop that no delay breaks.
        """
        return self.evaluation_order()

    def has_instantaneous_loop(self) -> bool:
        """True if the causality check fails for this diagram."""
        try:
            self.check_causality()
            return False
        except CausalityError:
            return True

    # -- type inference ------------------------------------------------------------
    def infer_port_types(self) -> Dict[str, Type]:
        """Propagate static types along channels onto dynamically typed ports.

        DFD ports start dynamically typed (``any``).  When the diagram is
        embedded under statically typed SSD/CCD interfaces, the types of the
        boundary ports and of typed blocks flow along the channels.  The
        method updates the port types in place and returns the mapping
        ``"component.port" -> type`` for all ports whose type was refined.
        """
        refined: Dict[str, Type] = {}
        changed = True
        iterations = 0
        while changed and iterations < 50:
            changed = False
            iterations += 1
            for channel in self.channels():
                source = self._port_of(channel.source.component, channel.source.port)
                dest = self._port_of(channel.destination.component,
                                     channel.destination.port)
                if source is None or dest is None:
                    continue
                if source.is_statically_typed() and not dest.is_statically_typed():
                    dest.retype(source.port_type)
                    refined[self._key(channel.destination.component,
                                      channel.destination.port)] = source.port_type
                    changed = True
                elif dest.is_statically_typed() and not source.is_statically_typed():
                    source.retype(dest.port_type)
                    refined[self._key(channel.source.component,
                                      channel.source.port)] = dest.port_type
                    changed = True
                elif source.is_statically_typed() and dest.is_statically_typed():
                    merged = unify(source.port_type, dest.port_type)
                    if merged != dest.port_type:
                        dest.retype(merged)
                        refined[self._key(channel.destination.component,
                                          channel.destination.port)] = merged
                        changed = True
        return refined

    def _port_of(self, component_name: Optional[str], port_name: str):
        try:
            if component_name is None:
                return self.port(port_name)
            return self.subcomponent(component_name).port(port_name)
        except Exception:  # noqa: BLE001
            return None

    @staticmethod
    def _key(component_name: Optional[str], port_name: str) -> str:
        return port_name if component_name is None else f"{component_name}.{port_name}"

    # -- validation ---------------------------------------------------------------
    def validate(self) -> ValidationReport:
        """Check the DFD well-formedness rules including causality."""
        return DFD_RULES.apply(self, subject=f"DFD {self.name!r}")


DFD_RULES = RuleSet("dfd")


@DFD_RULES.rule("dfd-causality")
def _rule_causality(dfd: DataFlowDiagram, report: ValidationReport) -> None:
    """Instantaneous loops are rejected (causality check of the prototype)."""
    try:
        dfd.check_causality()
    except CausalityError as error:
        report.error("dfd-causality", str(error), element=dfd.name,
                     suggestion="insert a unit delay block or mark one "
                                "channel of the loop as delayed")


@DFD_RULES.rule("dfd-behavior")
def _rule_behavior(dfd: DataFlowDiagram, report: ValidationReport) -> None:
    """All blocks of a DFD must have an executable behaviour."""
    for component in dfd.subcomponents():
        if not component.has_behavior():
            report.error("dfd-behavior",
                         f"block {component.name!r} has no behaviour; atomic "
                         "DFD blocks must be defined by an MTD, an STD or an "
                         "expression",
                         element=component.name)


@DFD_RULES.rule("dfd-connectivity")
def _rule_connectivity(dfd: DataFlowDiagram, report: ValidationReport) -> None:
    """Unconnected block inputs are reported (they read permanent absence)."""
    driven = {channel.destination.key for channel in dfd.channels()}
    for component in dfd.subcomponents():
        for port in component.input_ports():
            if (component.name, port.name) not in driven:
                report.warning(
                    "dfd-connectivity",
                    f"block input {port.qualified_name!r} is not driven and "
                    "will always read the absence value",
                    element=port.qualified_name)


@DFD_RULES.rule("dfd-boundary")
def _rule_boundary(dfd: DataFlowDiagram, report: ValidationReport) -> None:
    """Every boundary output of the diagram must be driven by some channel."""
    driven_boundary = {channel.destination.port for channel in dfd.channels()
                       if channel.destination.is_boundary()}
    for port in dfd.output_ports():
        if port.name not in driven_boundary:
            report.error("dfd-boundary",
                         f"boundary output {port.name!r} is never driven",
                         element=port.name)
