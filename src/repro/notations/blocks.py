"""Block library for discrete-time computations (paper Sec. 3.2).

"With this mechanism, it is possible to define adequate block libraries for
discrete-time computations."  This module provides the standard blocks used
by the examples, the case study and the benchmarks: arithmetic, sampling
(``when`` / ``delay`` of Sec. 2), signal conditioning (limit, rate limiter,
hysteresis), and simple controllers (integrator, PID).

All blocks are ordinary :class:`~repro.core.components.Component` subclasses
and can be placed inside any DFD (or SSD, where composition adds delays).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.components import Component, StatefulComponent
from ..core.errors import ModelError
from ..core.values import ABSENT, is_absent, is_present


class Constant(Component):
    """Emits the same value at every tick."""

    def __init__(self, name: str, value: Any):
        super().__init__(name, description=f"constant {value!r}")
        self.value = value
        self.add_output("out")

    def react(self, inputs, state, tick):
        return {"out": self.value}, state

    def instantaneous_dependencies(self):
        return {"out": set()}


class Add(Component):
    """Sum of all present inputs; absent if every input is absent."""

    def __init__(self, name: str, n_inputs: int = 2):
        super().__init__(name, description=f"{n_inputs}-input adder")
        if n_inputs < 1:
            raise ModelError("Add needs at least one input")
        for index in range(1, n_inputs + 1):
            self.add_input(f"in{index}")
        self.add_output("out")

    def react(self, inputs, state, tick):
        present = [v for v in inputs.values() if is_present(v)]
        if not present:
            return {"out": ABSENT}, state
        return {"out": sum(present)}, state


class Subtract(Component):
    """Difference ``minuend - subtrahend``; absent if either is absent."""

    def __init__(self, name: str):
        super().__init__(name, description="subtractor")
        self.add_input("minuend")
        self.add_input("subtrahend")
        self.add_output("out")

    def react(self, inputs, state, tick):
        a, b = inputs["minuend"], inputs["subtrahend"]
        if is_absent(a) or is_absent(b):
            return {"out": ABSENT}, state
        return {"out": a - b}, state


class Multiply(Component):
    """Product of all present inputs; absent if any input is absent."""

    def __init__(self, name: str, n_inputs: int = 2):
        super().__init__(name, description=f"{n_inputs}-input multiplier")
        for index in range(1, n_inputs + 1):
            self.add_input(f"in{index}")
        self.add_output("out")

    def react(self, inputs, state, tick):
        values = list(inputs.values())
        if any(is_absent(v) for v in values):
            return {"out": ABSENT}, state
        product = 1
        for value in values:
            product = product * value
        return {"out": product}, state


class Gain(Component):
    """Multiplies the input by a constant factor."""

    def __init__(self, name: str, factor: float):
        super().__init__(name, description=f"gain {factor!r}")
        self.factor = factor
        self.add_input("in1")
        self.add_output("out")

    def react(self, inputs, state, tick):
        value = inputs["in1"]
        if is_absent(value):
            return {"out": ABSENT}, state
        return {"out": value * self.factor}, state


class UnitDelay(StatefulComponent):
    """The ``delay`` operator: outputs the previous present input value.

    The first output is the configured initial value.  The block has no
    instantaneous input-to-output dependency, so it legally breaks feedback
    loops in DFDs (paper Sec. 2 / 3.2).
    """

    def __init__(self, name: str, initial: Any = 0):
        super().__init__(name, description="unit delay")
        self.initial = initial
        self.add_input("in1")
        self.add_output("out")

    def initial_state(self):
        return self.initial

    def step(self, inputs, state, tick):
        value = inputs["in1"]
        next_state = value if is_present(value) else state
        return {"out": state}, next_state


class When(Component):
    """The ``when`` operator of Fig. 2: sample a flow by a boolean clock.

    The value on ``in1`` is forwarded at ticks where the ``clock`` input is
    present and true; at all other ticks the output is absent.
    """

    def __init__(self, name: str):
        super().__init__(name, description="when (down-sampling) operator")
        self.add_input("in1")
        self.add_input("clock")
        self.add_output("out")

    def react(self, inputs, state, tick):
        condition = inputs["clock"]
        if is_present(condition) and condition:
            return {"out": inputs["in1"]}, state
        return {"out": ABSENT}, state


class Every(Component):
    """The ``every(n, true)`` macro as a clock-generator block."""

    def __init__(self, name: str, n: int, phase: int = 0):
        super().__init__(name, description=f"every({n}, true)")
        if n < 1:
            raise ModelError("every(n, true) requires n >= 1")
        self.n = n
        self.phase = phase % n
        self.add_output("out")

    def react(self, inputs, state, tick):
        return {"out": tick % self.n == self.phase}, state

    def instantaneous_dependencies(self):
        return {"out": set()}


class Hold(StatefulComponent):
    """Sample-and-hold: replaces absence by the most recent present value."""

    def __init__(self, name: str, initial: Any = 0):
        super().__init__(name, description="sample and hold")
        self.initial = initial
        self.add_input("in1")
        self.add_output("out")

    direct_feedthrough = True

    def initial_state(self):
        return self.initial

    def step(self, inputs, state, tick):
        value = inputs["in1"]
        if is_present(value):
            return {"out": value}, value
        return {"out": state}, state

    def instantaneous_dependencies(self):
        return {"out": {"in1"}}


class Switch(Component):
    """Selects ``on_true`` or ``on_false`` depending on a boolean control."""

    def __init__(self, name: str):
        super().__init__(name, description="switch")
        self.add_input("control")
        self.add_input("on_true")
        self.add_input("on_false")
        self.add_output("out")

    def react(self, inputs, state, tick):
        control = inputs["control"]
        if is_absent(control):
            return {"out": ABSENT}, state
        return {"out": inputs["on_true"] if control else inputs["on_false"]}, state


class Limit(Component):
    """Clamps the input into the configured [low, high] range."""

    def __init__(self, name: str, low: float, high: float):
        super().__init__(name, description=f"limit to [{low}, {high}]")
        if low > high:
            raise ModelError("Limit requires low <= high")
        self.low = low
        self.high = high
        self.add_input("in1")
        self.add_output("out")

    def react(self, inputs, state, tick):
        value = inputs["in1"]
        if is_absent(value):
            return {"out": ABSENT}, state
        return {"out": max(self.low, min(self.high, value))}, state


class RateLimiter(StatefulComponent):
    """Limits the per-tick change of the output (slew-rate limiter)."""

    direct_feedthrough = True

    def __init__(self, name: str, max_delta: float, initial: float = 0.0):
        super().__init__(name, description=f"rate limiter +-{max_delta}/tick")
        if max_delta <= 0:
            raise ModelError("RateLimiter needs a positive max_delta")
        self.max_delta = max_delta
        self.initial = initial
        self.add_input("in1")
        self.add_output("out")

    def initial_state(self):
        return self.initial

    def step(self, inputs, state, tick):
        target = inputs["in1"]
        if is_absent(target):
            return {"out": state}, state
        delta = max(-self.max_delta, min(self.max_delta, target - state))
        new_value = state + delta
        return {"out": new_value}, new_value

    def instantaneous_dependencies(self):
        return {"out": {"in1"}}


class Hysteresis(StatefulComponent):
    """Two-threshold switch: on above *high*, off below *low*."""

    direct_feedthrough = True

    def __init__(self, name: str, low: float, high: float, initial: bool = False):
        super().__init__(name, description=f"hysteresis [{low}, {high}]")
        if low >= high:
            raise ModelError("Hysteresis requires low < high")
        self.low = low
        self.high = high
        self.initial = initial
        self.add_input("in1")
        self.add_output("out")

    def initial_state(self):
        return self.initial

    def step(self, inputs, state, tick):
        value = inputs["in1"]
        if is_absent(value):
            return {"out": state}, state
        if value >= self.high:
            new_state = True
        elif value <= self.low:
            new_state = False
        else:
            new_state = state
        return {"out": new_state}, new_state

    def instantaneous_dependencies(self):
        return {"out": {"in1"}}


class Counter(StatefulComponent):
    """Counts present, true values on its input; reset by the reset port."""

    def __init__(self, name: str):
        super().__init__(name, description="event counter")
        self.add_input("in1")
        self.add_input("reset")
        self.add_output("count")

    def initial_state(self):
        return 0

    def step(self, inputs, state, tick):
        if is_present(inputs["reset"]) and inputs["reset"]:
            state = 0
        if is_present(inputs["in1"]) and inputs["in1"]:
            state = state + 1
        return {"count": state}, state

    def instantaneous_dependencies(self):
        return {"count": {"in1", "reset"}}

    direct_feedthrough = True


class EdgeDetector(StatefulComponent):
    """Emits true for one tick on a rising edge of its boolean input."""

    direct_feedthrough = True

    def __init__(self, name: str):
        super().__init__(name, description="rising edge detector")
        self.add_input("in1")
        self.add_output("out")

    def initial_state(self):
        return False

    def step(self, inputs, state, tick):
        value = inputs["in1"]
        if is_absent(value):
            return {"out": False}, state
        rising = bool(value) and not state
        return {"out": rising}, bool(value)

    def instantaneous_dependencies(self):
        return {"out": {"in1"}}


class Integrator(StatefulComponent):
    """Discrete-time integrator with optional output saturation."""

    direct_feedthrough = True

    def __init__(self, name: str, gain: float = 1.0, initial: float = 0.0,
                 low: Optional[float] = None, high: Optional[float] = None):
        super().__init__(name, description="discrete integrator")
        self.gain = gain
        self.initial = initial
        self.low = low
        self.high = high
        self.add_input("in1")
        self.add_output("out")

    def initial_state(self):
        return self.initial

    def step(self, inputs, state, tick):
        value = inputs["in1"]
        if is_absent(value):
            return {"out": state}, state
        new_value = state + self.gain * value
        if self.low is not None:
            new_value = max(self.low, new_value)
        if self.high is not None:
            new_value = min(self.high, new_value)
        return {"out": new_value}, new_value

    def instantaneous_dependencies(self):
        return {"out": {"in1"}}


class PIDController(StatefulComponent):
    """Discrete PID controller on the error input.

    Implements ``u = kp*e + ki*sum(e) + kd*(e - e_prev)`` with anti-windup by
    clamping the integral term to the output limits when they are given.
    """

    direct_feedthrough = True

    def __init__(self, name: str, kp: float, ki: float = 0.0, kd: float = 0.0,
                 low: Optional[float] = None, high: Optional[float] = None):
        super().__init__(name, description="PID controller")
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.low = low
        self.high = high
        self.add_input("error")
        self.add_output("out")

    def initial_state(self):
        return {"integral": 0.0, "previous": 0.0}

    def step(self, inputs, state, tick):
        error = inputs["error"]
        if is_absent(error):
            return {"out": ABSENT}, state
        integral = state["integral"] + error
        if self.low is not None and self.ki:
            integral = max(self.low / self.ki, integral)
        if self.high is not None and self.ki:
            integral = min(self.high / self.ki, integral)
        derivative = error - state["previous"]
        output = self.kp * error + self.ki * integral + self.kd * derivative
        if self.low is not None:
            output = max(self.low, output)
        if self.high is not None:
            output = min(self.high, output)
        return {"out": output}, {"integral": integral, "previous": error}

    def instantaneous_dependencies(self):
        return {"out": {"error"}}


class LookupTable1D(Component):
    """Piecewise-linear 1-D characteristic map (typical engine-control block)."""

    def __init__(self, name: str, breakpoints: Sequence[float],
                 values: Sequence[float]):
        super().__init__(name, description="1-D lookup table")
        if len(breakpoints) != len(values) or len(breakpoints) < 2:
            raise ModelError("LookupTable1D needs >= 2 matching breakpoints/values")
        if list(breakpoints) != sorted(breakpoints):
            raise ModelError("LookupTable1D breakpoints must be increasing")
        self.breakpoints = list(breakpoints)
        self.values = list(values)
        self.add_input("in1")
        self.add_output("out")

    def _interpolate(self, x: float) -> float:
        points = self.breakpoints
        if x <= points[0]:
            return self.values[0]
        if x >= points[-1]:
            return self.values[-1]
        for index in range(1, len(points)):
            if x <= points[index]:
                x0, x1 = points[index - 1], points[index]
                y0, y1 = self.values[index - 1], self.values[index]
                alpha = (x - x0) / (x1 - x0)
                return y0 + alpha * (y1 - y0)
        return self.values[-1]  # pragma: no cover - unreachable

    def react(self, inputs, state, tick):
        value = inputs["in1"]
        if is_absent(value):
            return {"out": ABSENT}, state
        return {"out": self._interpolate(value)}, state


#: Registry of block constructors by conventional library name; used by the
#: serialization layer and by white-box reengineering to rebuild diagrams.
BLOCK_LIBRARY: Dict[str, type] = {
    "constant": Constant,
    "add": Add,
    "subtract": Subtract,
    "multiply": Multiply,
    "gain": Gain,
    "unit_delay": UnitDelay,
    "when": When,
    "every": Every,
    "hold": Hold,
    "switch": Switch,
    "limit": Limit,
    "rate_limiter": RateLimiter,
    "hysteresis": Hysteresis,
    "counter": Counter,
    "edge_detector": EdgeDetector,
    "integrator": Integrator,
    "pid": PIDController,
    "lookup_table_1d": LookupTable1D,
}


def library_block(kind: str, name: str, **parameters: Any) -> Component:
    """Instantiate a library block by its registry name."""
    try:
        block_class = BLOCK_LIBRARY[kind]
    except KeyError as exc:
        raise ModelError(f"unknown library block kind {kind!r}") from exc
    return block_class(name, **parameters)
