"""Cluster Communication Diagrams (CCD) -- paper Sec. 3.3, Fig. 7.

CCDs are the top-level notation of the Logical Architecture.  They group and
instantiate FDA-level components into *clusters*, the smallest deployable
units: several clusters may be mapped to a given operating-system task, but
a given cluster will not be split across several tasks.

Compared to SSDs and DFDs:

* cluster interfaces are statically typed **and** signal frequencies (rates)
  are made explicit -- every cluster carries a periodic clock,
* clusters may **not** be defined recursively by other CCDs (hierarchical
  DFDs inside a cluster are fine),
* interface types may be *implementation types* (``int16``, fixed point...),
  captured by an :class:`~repro.core.impl_types.ImplementationMapping`,
* well-definedness conditions depend on the target platform -- e.g. for an
  OSEK target with fixed-priority preemptive scheduling, communication from
  a slower-rate cluster to a faster-rate cluster needs at least one delay
  operator in the direction of data flow (checked by
  :mod:`repro.analysis.well_definedness`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.clocks import BASE_CLOCK, Clock, PeriodicClock
from ..core.components import Component, CompositeComponent
from ..core.errors import ModelError
from ..core.impl_types import ImplementationMapping
from ..core.ports import Port
from ..core.types import Type, is_assignable
from ..core.validation import RuleSet, ValidationReport
from ..core.values import ABSENT


class Cluster(CompositeComponent):
    """A smallest deployable unit: statically typed, with an explicit rate.

    The internal behaviour of a cluster is a (possibly hierarchical) DFD;
    the cluster itself adds the explicit rate and the implementation-type
    information needed for deployment.
    """

    notation = "Cluster"

    def __init__(self, name: str, rate: Clock = BASE_CLOCK, description: str = ""):
        super().__init__(name, description, delayed_channels_by_default=False)
        if not rate.is_periodic():
            raise ModelError(
                f"cluster {name!r} needs a periodic rate clock, got "
                f"{rate.expression()!r}")
        self.rate = rate
        #: per-port implementation-type decisions (filled by refinement)
        self.implementation = ImplementationMapping()

    @property
    def period(self) -> int:
        """Rate period in base-clock ticks."""
        return self.rate.period or 1

    def set_rate(self, rate: Clock) -> None:
        if not rate.is_periodic():
            raise ModelError(f"cluster {self.name!r} rate must be periodic")
        self.rate = rate
        for port in self.ports():
            port.reclock(rate)
        # Port clocks changed in place: bump the structure version so cached
        # execution plans / compiled schedules keyed on it are invalidated.
        self.invalidate_plan()

    def worst_case_execution_time(self) -> float:
        """A simple WCET estimate used by deployment: 0.1 ticks per leaf block.

        The annotation ``wcet`` overrides the estimate when present (the
        Technical Architecture would supply measured values).
        """
        if "wcet" in self.annotations:
            return float(self.annotations["wcet"])
        return 0.1 * max(1, len(self.flatten_leaves()))


class ClusterCommunicationDiagram(CompositeComponent):
    """The LA top-level structure: a flat network of clusters.

    The diagram itself is a composite with instantaneous forwarding channels;
    rate transitions between clusters of different periods are the subject of
    the well-definedness conditions, not of the execution semantics here
    (simulation at the LA level runs on the base clock, with each cluster
    internally reacting only at its rate via the ``when``-style gating applied
    by the simulation engine).
    """

    notation = "CCD"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description, delayed_channels_by_default=False)

    # -- structure ---------------------------------------------------------------
    def add_cluster(self, cluster: Cluster) -> Cluster:
        if not isinstance(cluster, Cluster):
            raise ModelError(
                f"only Cluster instances may be added to CCD {self.name!r}; "
                f"got {type(cluster).__name__} (CCDs may not be recursive)")
        self.add_subcomponent(cluster)
        return cluster

    def add_subcomponent(self, component: Component) -> Component:
        if isinstance(component, ClusterCommunicationDiagram):
            raise ModelError(
                "CCDs may not be defined recursively by other CCDs "
                "(paper Sec. 3.3)")
        return super().add_subcomponent(component)

    def clusters(self) -> List[Cluster]:
        return [c for c in self.subcomponents() if isinstance(c, Cluster)]

    def cluster(self, name: str) -> Cluster:
        component = self.subcomponent(name)
        if not isinstance(component, Cluster):
            raise ModelError(f"{name!r} in CCD {self.name!r} is not a cluster")
        return component

    def rates(self) -> Dict[str, int]:
        """Map cluster name to its rate period in base ticks."""
        return {cluster.name: cluster.period for cluster in self.clusters()}

    def rate_transitions(self) -> List[Dict[str, Any]]:
        """All inter-cluster channels annotated with their rate relation.

        Each entry records the channel, the producing and consuming cluster,
        their periods and the direction of the transition
        (``"slow-to-fast"``, ``"fast-to-slow"`` or ``"same-rate"``).
        """
        transitions = []
        for channel in self.internal_channels():
            source_name = channel.source.component
            dest_name = channel.destination.component
            if source_name is None or dest_name is None:
                continue
            source = self.subcomponent(source_name)
            dest = self.subcomponent(dest_name)
            if not isinstance(source, Cluster) or not isinstance(dest, Cluster):
                continue
            if source.period < dest.period:
                direction = "fast-to-slow"
            elif source.period > dest.period:
                direction = "slow-to-fast"
            else:
                direction = "same-rate"
            transitions.append({
                "channel": channel,
                "source": source.name,
                "destination": dest.name,
                "source_period": source.period,
                "destination_period": dest.period,
                "direction": direction,
                "delayed": channel.delayed,
            })
        return transitions

    # -- validation --------------------------------------------------------------
    def validate(self) -> ValidationReport:
        """Check the CCD structural rules (platform rules live in analysis)."""
        return CCD_RULES.apply(self, subject=f"CCD {self.name!r}")


CCD_RULES = RuleSet("ccd")


@CCD_RULES.rule("ccd-clusters-only")
def _rule_clusters_only(ccd: ClusterCommunicationDiagram,
                        report: ValidationReport) -> None:
    """Top-level elements of a CCD must be clusters (no nested CCDs)."""
    for component in ccd.subcomponents():
        if not isinstance(component, Cluster):
            report.error("ccd-clusters-only",
                         f"element {component.name!r} is a "
                         f"{type(component).__name__}, not a cluster",
                         element=component.name)


@CCD_RULES.rule("ccd-explicit-rates")
def _rule_explicit_rates(ccd: ClusterCommunicationDiagram,
                         report: ValidationReport) -> None:
    """Signal frequencies are made explicit on the LA level."""
    for cluster in ccd.clusters():
        if not cluster.rate.is_periodic() or cluster.rate.period is None:
            report.error("ccd-explicit-rates",
                         f"cluster {cluster.name!r} has no explicit periodic rate",
                         element=cluster.name)
        for port in cluster.ports():
            if not port.clock.is_periodic():
                report.warning("ccd-explicit-rates",
                               f"port {port.qualified_name!r} has an aperiodic "
                               "clock; LA-level interfaces should expose rates",
                               element=port.qualified_name)


@CCD_RULES.rule("ccd-static-typing")
def _rule_static_typing(ccd: ClusterCommunicationDiagram,
                        report: ValidationReport) -> None:
    """Cluster interfaces must be statically typed (like SSD components)."""
    for cluster in ccd.clusters():
        for port in cluster.ports():
            if not port.is_statically_typed():
                report.error("ccd-static-typing",
                             f"cluster port {port.qualified_name!r} is not "
                             "statically typed",
                             element=port.qualified_name)


@CCD_RULES.rule("ccd-type-compatibility")
def _rule_type_compat(ccd: ClusterCommunicationDiagram,
                      report: ValidationReport) -> None:
    for channel in ccd.channels():
        source = _resolve(ccd, channel.source.component, channel.source.port)
        dest = _resolve(ccd, channel.destination.component, channel.destination.port)
        if source is None or dest is None:
            report.error("ccd-type-compatibility",
                         f"channel {channel.name!r} references an unknown port",
                         element=channel.name)
            continue
        if not is_assignable(source.port_type, dest.port_type):
            report.error("ccd-type-compatibility",
                         f"channel {channel.name!r}: {source.port_type!r} is not "
                         f"assignable to {dest.port_type!r}",
                         element=channel.name)


@CCD_RULES.rule("ccd-harmonic-rates")
def _rule_harmonic(ccd: ClusterCommunicationDiagram,
                   report: ValidationReport) -> None:
    """Communicating clusters should have harmonic (integer-ratio) rates."""
    for entry in ccd.rate_transitions():
        slow = max(entry["source_period"], entry["destination_period"])
        fast = min(entry["source_period"], entry["destination_period"])
        if fast and slow % fast != 0:
            report.warning(
                "ccd-harmonic-rates",
                f"clusters {entry['source']!r} ({entry['source_period']}) and "
                f"{entry['destination']!r} ({entry['destination_period']}) "
                "communicate with non-harmonic rates",
                element=entry["channel"].name)


def _resolve(ccd: ClusterCommunicationDiagram, component_name: Optional[str],
             port_name: str) -> Optional[Port]:
    try:
        if component_name is None:
            return ccd.port(port_name)
        return ccd.subcomponent(component_name).port(port_name)
    except Exception:  # noqa: BLE001
        return None
