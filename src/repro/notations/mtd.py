"""Mode Transition Diagrams (MTD) -- paper Sec. 3.2, Figs. 6 and 8.

MTDs represent explicit system modes and alternate behaviours with respect
to modes.  They consist of *modes* and *transitions* between modes;
transitions are triggered by certain combinations of messages arriving at
the MTD's component, and the behaviour of the component within a mode is
defined by a subordinate DFD or SSD associated with the mode (comparable to
the composition of FSMs and concurrency models in *charts).

The case study (Sec. 5) shows MTDs capturing and encapsulating *implicit*
operation modes of ASCET models -- e.g. the ``ThrottleRateOfChange``
component with its ``FuelEnabled`` and ``CrankingOverrun`` modes (Fig. 8) --
instead of burying them in If-Then-Else control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..core.components import Component
from ..core.errors import ModelError, UnknownElementError
from ..core.expr_eval import ExpressionEvaluator
from ..core.expr_parser import parse_expression
from ..core.expressions import Expression
from ..core.validation import RuleSet, ValidationReport
from ..core.values import ABSENT, is_present


@dataclass
class Mode:
    """One operational mode: a name plus an optional subordinate behaviour."""

    name: str
    behavior: Optional[Component] = None
    description: str = ""

    def has_behavior(self) -> bool:
        return self.behavior is not None and self.behavior.has_behavior()


@dataclass
class ModeTransition:
    """A transition between two modes, triggered by a guard over the inputs."""

    source: str
    target: str
    guard: Expression
    priority: int = 0
    description: str = ""

    def describe(self) -> str:
        return (f"{self.source} --[{self.guard.to_source()}]--> {self.target}"
                + (f"  ({self.description})" if self.description else ""))


class ModeTransitionDiagram(Component):
    """A component whose behaviour is organised into explicit modes.

    The diagram owns the component interface; every mode behaviour must use
    a subset of that interface (same port names).  At each tick, transitions
    leaving the current mode are evaluated against the arriving messages; if
    one fires, the mode changes *before* the step's behaviour executes
    (strong preemption), then the behaviour of the active mode computes the
    outputs.  If the diagram declares an output port named ``mode`` it emits
    the active mode's name there every tick.
    """

    notation = "MTD"
    MODE_PORT = "mode"

    def __init__(self, name: str, description: str = "",
                 evaluator: Optional[ExpressionEvaluator] = None):
        super().__init__(name, description)
        self._modes: Dict[str, Mode] = {}
        self._transitions: List[ModeTransition] = []
        #: per-mode sorted outgoing transitions, invalidated by add_transition
        self._outgoing_cache: Dict[str, Tuple[ModeTransition, ...]] = {}
        self._initial_mode: Optional[str] = None
        self._evaluator = evaluator or ExpressionEvaluator()

    # -- construction ------------------------------------------------------------
    def add_mode(self, name: str, behavior: Optional[Component] = None,
                 initial: bool = False, description: str = "") -> Mode:
        """Declare a mode; the first mode added becomes the initial mode."""
        if name in self._modes:
            raise ModelError(f"MTD {self.name!r} already has a mode {name!r}")
        if behavior is not None:
            self._check_behavior_interface(name, behavior)
        mode = Mode(name, behavior, description)
        self._modes[name] = mode
        if initial or self._initial_mode is None:
            self._initial_mode = name
        return mode

    def set_initial_mode(self, name: str) -> None:
        if name not in self._modes:
            raise UnknownElementError(f"MTD {self.name!r} has no mode {name!r}")
        self._initial_mode = name

    def add_transition(self, source: str, target: str, guard: Any,
                       priority: int = 0, description: str = "") -> ModeTransition:
        """Add a transition; *guard* is a base-language expression (or source)."""
        for mode_name in (source, target):
            if mode_name not in self._modes:
                raise UnknownElementError(
                    f"MTD {self.name!r} has no mode {mode_name!r}")
        if isinstance(guard, str):
            guard = parse_expression(guard)
        if not isinstance(guard, Expression):
            raise ModelError("transition guard must be an expression")
        transition = ModeTransition(source, target, guard, priority, description)
        self._transitions.append(transition)
        self._outgoing_cache.pop(source, None)
        return transition

    def _check_behavior_interface(self, mode_name: str, behavior: Component) -> None:
        unknown_inputs = set(behavior.input_names()) - set(self.input_names())
        if unknown_inputs:
            raise ModelError(
                f"behaviour of mode {mode_name!r} reads ports "
                f"{sorted(unknown_inputs)} that MTD {self.name!r} does not declare")
        known_outputs = set(self.output_names())
        unknown_outputs = set(behavior.output_names()) - known_outputs
        if unknown_outputs:
            raise ModelError(
                f"behaviour of mode {mode_name!r} writes ports "
                f"{sorted(unknown_outputs)} that MTD {self.name!r} does not declare")

    # -- queries -------------------------------------------------------------------
    @property
    def initial_mode(self) -> Optional[str]:
        return self._initial_mode

    def modes(self) -> List[Mode]:
        return list(self._modes.values())

    def mode_names(self) -> List[str]:
        return list(self._modes.keys())

    def mode(self, name: str) -> Mode:
        try:
            return self._modes[name]
        except KeyError as exc:
            raise UnknownElementError(
                f"MTD {self.name!r} has no mode {name!r}") from exc

    def transitions(self) -> List[ModeTransition]:
        return list(self._transitions)

    def transitions_from(self, mode_name: str) -> List[ModeTransition]:
        """Transitions leaving *mode_name*, ordered by descending priority."""
        return list(self._outgoing(mode_name))

    def _outgoing(self, mode_name: str) -> Tuple[ModeTransition, ...]:
        """Sorted outgoing transitions, cached so ``react`` stops re-filtering
        and re-sorting the full transition list every tick."""
        cached = self._outgoing_cache.get(mode_name)
        if cached is None:
            outgoing = [t for t in self._transitions if t.source == mode_name]
            outgoing.sort(key=lambda t: -t.priority)
            cached = tuple(outgoing)
            self._outgoing_cache[mode_name] = cached
        return cached

    def reachable_modes(self) -> Set[str]:
        """Modes reachable from the initial mode along transitions."""
        if self._initial_mode is None:
            return set()
        reachable = {self._initial_mode}
        frontier = [self._initial_mode]
        while frontier:
            current = frontier.pop()
            for transition in self._transitions:
                if transition.source == current and transition.target not in reachable:
                    reachable.add(transition.target)
                    frontier.append(transition.target)
        return reachable

    def guard_variables(self) -> Set[str]:
        """All input names referenced by any transition guard."""
        names: Set[str] = set()
        for transition in self._transitions:
            names |= set(transition.guard.variables())
        return names

    # -- behaviour -------------------------------------------------------------------
    def has_behavior(self) -> bool:
        return bool(self._modes) and all(
            mode.behavior is None or mode.behavior.has_behavior()
            for mode in self._modes.values())

    def initial_state(self) -> Any:
        mode_states = {
            name: (mode.behavior.initial_state() if mode.behavior is not None else None)
            for name, mode in self._modes.items()
        }
        return {"mode": self._initial_mode, "mode_states": mode_states,
                "last_transition": None}

    def react(self, inputs: Mapping[str, Any], state: Any,
              tick: int) -> Tuple[Dict[str, Any], Any]:
        if not self._modes:
            raise ModelError(f"MTD {self.name!r} has no modes")
        if state is None:
            state = self.initial_state()
        current = state["mode"] or self._initial_mode
        mode_states = dict(state["mode_states"])

        fired = None
        environment = dict(inputs)
        for transition in self._outgoing(current):
            value = self._evaluator.evaluate(transition.guard, environment)
            if is_present(value) and bool(value):
                fired = transition
                current = transition.target
                break

        mode = self._modes[current]
        outputs: Dict[str, Any] = {name: ABSENT for name in self.output_names()}
        if mode.behavior is not None:
            behavior_inputs = {name: inputs.get(name, ABSENT)
                               for name in mode.behavior.input_names()}
            mode_outputs, new_mode_state = mode.behavior.react(
                behavior_inputs, mode_states.get(current), tick)
            mode_states[current] = new_mode_state
            outputs.update(mode_outputs)
        if self.MODE_PORT in self.output_names():
            outputs[self.MODE_PORT] = current

        next_state = {"mode": current, "mode_states": mode_states,
                      "last_transition": fired.describe() if fired else None}
        return outputs, next_state

    # -- validation ---------------------------------------------------------------------
    def validate(self) -> ValidationReport:
        """Check the MTD well-formedness rules."""
        return MTD_RULES.apply(self, subject=f"MTD {self.name!r}")

    def __repr__(self) -> str:
        return (f"ModeTransitionDiagram({self.name}, modes={self.mode_names()}, "
                f"initial={self._initial_mode!r})")


MTD_RULES = RuleSet("mtd")


@MTD_RULES.rule("mtd-nonempty")
def _rule_nonempty(mtd: ModeTransitionDiagram, report: ValidationReport) -> None:
    if not mtd.modes():
        report.error("mtd-nonempty", "the MTD declares no modes", element=mtd.name)
    if mtd.initial_mode is None:
        report.error("mtd-nonempty", "the MTD has no initial mode", element=mtd.name)


@MTD_RULES.rule("mtd-guard-inputs")
def _rule_guard_inputs(mtd: ModeTransitionDiagram, report: ValidationReport) -> None:
    """Guards may only refer to messages arriving at the MTD's component."""
    inputs = set(mtd.input_names())
    for transition in mtd.transitions():
        unknown = set(transition.guard.variables()) - inputs
        if unknown:
            report.error(
                "mtd-guard-inputs",
                f"transition {transition.describe()} refers to unknown "
                f"inputs {sorted(unknown)}",
                element=f"{transition.source}->{transition.target}")


@MTD_RULES.rule("mtd-reachability")
def _rule_reachability(mtd: ModeTransitionDiagram, report: ValidationReport) -> None:
    """Modes that cannot be reached from the initial mode are suspicious."""
    reachable = mtd.reachable_modes()
    for mode in mtd.modes():
        if mode.name not in reachable:
            report.warning("mtd-reachability",
                           f"mode {mode.name!r} is unreachable from the "
                           f"initial mode {mtd.initial_mode!r}",
                           element=mode.name)


@MTD_RULES.rule("mtd-determinism")
def _rule_determinism(mtd: ModeTransitionDiagram, report: ValidationReport) -> None:
    """Transitions from one mode with equal priority and guards conflict."""
    seen: Dict[Tuple[str, int, str], ModeTransition] = {}
    for transition in mtd.transitions():
        key = (transition.source, transition.priority, transition.guard.to_source())
        if key in seen and seen[key].target != transition.target:
            report.error(
                "mtd-determinism",
                f"transitions from {transition.source!r} with guard "
                f"{transition.guard.to_source()} lead to both "
                f"{seen[key].target!r} and {transition.target!r}",
                element=transition.source)
        seen[key] = transition


@MTD_RULES.rule("mtd-behavior")
def _rule_behavior(mtd: ModeTransitionDiagram, report: ValidationReport) -> None:
    """Modes without behaviour are flagged (allowed during early design)."""
    for mode in mtd.modes():
        if mode.behavior is None:
            report.info("mtd-behavior",
                        f"mode {mode.name!r} has no subordinate behaviour yet",
                        element=mode.name)
