"""Op-level profiles of flat-IR step programs.

The flat schedule (:mod:`repro.simulation.schedule_ir`) executes a linear
op program; the batch backend (:mod:`repro.simulation.batch_ir`) sweeps
the same program across scenario lanes.  An :class:`OpProfile` records,
per program position: execution count and accumulated wall time, plus
gate skip counts, correction-barrier re-runs and (for the batch backend)
scalar-fallback tick counts -- everything needed to answer *where do the
ticks go* per backend.

Profiles are recorded only by the **instrumented** step variants
(``FlatSchedule.instrumented_step`` / the batch backend's profiled
program loop); the default step functions never see this module, which is
what keeps the zero-overhead-when-off contract structural rather than a
promise about cheap branches.

Like the metrics registry, profiles merge additively (same program shape
required), so per-worker profiles from a sharded run aggregate into one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

#: One op descriptor: ``(kind name, human label, runs-on-nested-fallback)``.
OpLabel = Tuple[str, str, bool]


class OpProfile:
    """Per-op execution counts and times of one compiled step program."""

    __slots__ = ("label", "op_kinds", "op_names", "nested_ops", "counts",
                 "times", "gate_skips", "correction_reruns", "ticks",
                 "total_time_s", "scalar_fallback_ticks")

    def __init__(self, label: str, op_labels: Sequence[OpLabel]):
        self.label = label
        self.op_kinds: Tuple[str, ...] = tuple(kind for kind, _, _ in op_labels)
        self.op_names: Tuple[str, ...] = tuple(name for _, name, _ in op_labels)
        self.nested_ops: Tuple[bool, ...] = tuple(nested
                                                  for _, _, nested in op_labels)
        size = len(self.op_kinds)
        self.counts: List[int] = [0] * size
        self.times: List[float] = [0.0] * size
        self.gate_skips: List[int] = [0] * size
        self.correction_reruns = 0
        self.ticks = 0
        self.total_time_s = 0.0
        #: ticks replayed through the scalar path by the batch backend
        self.scalar_fallback_ticks = 0

    # -- derived views -----------------------------------------------------

    def by_kind(self) -> Dict[str, Dict[str, float]]:
        """Aggregate count/time per op kind (``run``, ``expr``, ``gate``...)."""
        rollup: Dict[str, Dict[str, float]] = {}
        for index, kind in enumerate(self.op_kinds):
            entry = rollup.setdefault(kind, {"count": 0, "time_s": 0.0})
            entry["count"] += self.counts[index]
            entry["time_s"] += self.times[index]
        return rollup

    def nested_fallback_runs(self) -> int:
        """Executions of ops running on the nested-compiled fallback path."""
        return sum(count for count, nested
                   in zip(self.counts, self.nested_ops) if nested)

    def gate_stats(self) -> Tuple[int, int]:
        """(gate evaluations, gate skips) across all gate ops."""
        checks = sum(count for count, kind
                     in zip(self.counts, self.op_kinds) if kind == "gate")
        return checks, sum(self.gate_skips)

    def op_time_s(self) -> float:
        """Total time attributed to individual ops (<= :attr:`total_time_s`,
        the remainder being per-tick setup/teardown of the step loop)."""
        return sum(self.times)

    def hottest_ops(self, top: int = 10) -> List[Tuple[int, str, str, int, float]]:
        """The *top* ops by accumulated time:
        ``(index, kind, label, count, time_s)``."""
        order = sorted(range(len(self.times)),
                       key=lambda index: (-self.times[index], index))
        return [(index, self.op_kinds[index], self.op_names[index],
                 self.counts[index], self.times[index])
                for index in order[:top] if self.counts[index]]

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "OpProfile") -> "OpProfile":
        """Fold another profile of the *same program shape* into this one."""
        if other.op_kinds != self.op_kinds:
            raise ValueError(
                f"cannot merge profile {other.label!r} into {self.label!r}: "
                "the op programs differ")
        for index in range(len(self.counts)):
            self.counts[index] += other.counts[index]
            self.times[index] += other.times[index]
            self.gate_skips[index] += other.gate_skips[index]
        self.correction_reruns += other.correction_reruns
        self.ticks += other.ticks
        self.total_time_s += other.total_time_s
        self.scalar_fallback_ticks += other.scalar_fallback_ticks
        return self

    # -- export ------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        gate_checks, gate_skips = self.gate_stats()
        return {
            "label": self.label,
            "ticks": self.ticks,
            "total_time_s": self.total_time_s,
            "op_time_s": self.op_time_s(),
            "by_kind": self.by_kind(),
            "gate_checks": gate_checks,
            "gate_skips": gate_skips,
            "correction_reruns": self.correction_reruns,
            "nested_fallback_runs": self.nested_fallback_runs(),
            "scalar_fallback_ticks": self.scalar_fallback_ticks,
            "ops": [{
                "index": index,
                "kind": self.op_kinds[index],
                "label": self.op_names[index],
                "count": self.counts[index],
                "time_s": self.times[index],
                "gate_skips": self.gate_skips[index],
            } for index in range(len(self.op_kinds))],
        }

    def __repr__(self) -> str:
        return (f"OpProfile({self.label!r}, ops={len(self.op_kinds)}, "
                f"ticks={self.ticks})")


def format_profile(profile: OpProfile, top: int = 10) -> str:
    """Human summary of one profile: per-kind rollup + top-N hottest ops."""
    lines = [f"op profile: {profile.label}"]
    ticks = profile.ticks
    total = profile.total_time_s
    op_time = profile.op_time_s()
    rate = f"{ticks / total:,.0f} ticks/s" if total > 0 else "n/a"
    lines.append(f"  {ticks} ticks in {total:.6f}s ({rate}); "
                 f"{op_time:.6f}s attributed to ops "
                 f"({100.0 * op_time / total:.1f}%)" if total > 0
                 else f"  {ticks} ticks (no time recorded)")
    rollup = profile.by_kind()
    for kind in sorted(rollup, key=lambda k: -rollup[k]["time_s"]):
        entry = rollup[kind]
        share = (100.0 * entry["time_s"] / op_time) if op_time > 0 else 0.0
        lines.append(f"  {kind:>9}: {int(entry['count']):>10} execs  "
                     f"{entry['time_s']:.6f}s  ({share:.1f}%)")
    checks, skips = profile.gate_stats()
    if checks:
        lines.append(f"  gates: {skips}/{checks} skipped "
                     f"({100.0 * skips / checks:.1f}% silent)")
    if profile.correction_reruns:
        lines.append(f"  correction re-runs: {profile.correction_reruns}")
    if profile.nested_fallback_runs():
        lines.append(f"  nested-fallback runs: "
                     f"{profile.nested_fallback_runs()}")
    if profile.scalar_fallback_ticks:
        lines.append(f"  scalar-fallback ticks: "
                     f"{profile.scalar_fallback_ticks}")
    hottest = profile.hottest_ops(top)
    if hottest:
        lines.append(f"  hottest ops (top {len(hottest)}):")
        for index, kind, label, count, seconds in hottest:
            lines.append(f"    [{index:>4}] {kind:>9}  {seconds:.6f}s  "
                         f"x{count}  {label}")
    return "\n".join(lines)


def format_backend_comparison(profiles: Mapping[str, OpProfile]) -> str:
    """Side-by-side per-kind timing of the same workload across backends.

    *profiles* maps a backend name (e.g. ``"flat"``, ``"batch"``) to its
    profile; the table shows ticks/s and the per-kind time split so the
    backend trade-offs (vectorized exprs vs per-lane nested runs) are
    visible in one place.
    """
    if not profiles:
        return "backend comparison: (no profiles)"
    kinds = sorted({kind for profile in profiles.values()
                    for kind in profile.by_kind()})
    names = list(profiles)
    lines = ["backend comparison:"]
    header = f"  {'':>9}" + "".join(f"  {name:>14}" for name in names)
    lines.append(header)
    rates = []
    for name in names:
        profile = profiles[name]
        rates.append(f"{profile.ticks / profile.total_time_s:,.0f}/s"
                     if profile.total_time_s > 0 else "n/a")
    lines.append(f"  {'ticks':>9}" + "".join(
        f"  {rate:>14}" for rate in rates))
    for kind in kinds:
        row = f"  {kind:>9}"
        for name in names:
            entry = profiles[name].by_kind().get(kind)
            row += (f"  {entry['time_s']:>13.6f}s" if entry
                    else f"  {'-':>14}")
        lines.append(row)
    return "\n".join(lines)
