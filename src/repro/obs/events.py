"""The campaign flight log: typed, schema-versioned, crash-safe events.

A scenario campaign (one :func:`~repro.scenarios.runner.run_sharded`
batch, one :func:`~repro.search.loop.search_coverage` run) is a stream of
facts: it started, shards went out, scenarios finished or failed, search
rounds advanced coverage, it finished.  :class:`EventLog` records that
stream as typed :class:`CampaignEvent` records with **monotonic sequence
numbers** and a **watermark** (the last durably appended sequence number
-- the checkpoint/resume primitive of the distributed-campaign roadmap
item): everything at or below the watermark survived, everything above it
must be re-run.

Three properties carry the design:

* **Crash-safe JSONL append.**  With a ``path``, every event is one
  ``json.dumps(..., sort_keys=True)`` line, written and flushed before
  :meth:`EventLog.emit` returns.  A crash can lose at most the line being
  written; :func:`read_events` skips a truncated trailing line with a
  warning and returns the watermark of the surviving prefix.
  :meth:`EventLog.resume` reopens a log at its watermark, which is how an
  interrupted campaign continues instead of restarting.
* **Byte-stable exports.**  The clock is injectable; under a fake clock
  :meth:`EventLog.to_jsonl` is byte-identical across runs (keys sorted,
  sequence numbers deterministic), mirroring the tracer contract.
* **Executor-invariant normalization.**  Pool workers buffer events
  locally (shipped back in the runner's ``_ShardOutcome`` envelopes, like
  the worker metrics registries) and the parent re-sequences them in
  completion order -- which is nondeterministic.  :func:`normalized_stream`
  projects the stream onto its executor-invariant core (scenario- and
  round-level facts, volatile keys scrubbed, canonically sorted), on which
  serial == thread == process holds exactly; the executor-equivalence
  tests pin this, the same way ``counter_values("runner.scenario.")``
  pins the metrics projection.

:class:`CampaignProgress` folds a stream (or a tailed file) into live
progress -- scenario counts, failure roll-ups by exception type, search
coverage -- rendered by :meth:`CampaignProgress.format_progress` together
with the duration quantiles of a
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
import time
import warnings
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

#: Version stamped into every record; readers reject lines from the future.
SCHEMA_VERSION = 1

#: The closed vocabulary of campaign event types.
EVENT_TYPES = frozenset({
    "campaign_started",
    "shard_dispatched",
    "scenario_finished",
    "scenario_error",
    "search_round",
    "campaign_finished",
})

#: Event types whose data depends only on the batch, never on sharding,
#: executor kind or completion order -- the normalization projection.
INVARIANT_TYPES = frozenset({
    "campaign_started",
    "scenario_finished",
    "scenario_error",
    "search_round",
    "campaign_finished",
})

#: Data keys scrubbed by :func:`normalized_stream`: timing, worker
#: identity, pool shape and backend choice are execution strategy, not
#: campaign facts, and legitimately differ across equivalent runs.
VOLATILE_KEYS = frozenset({
    "worker", "workers", "executor", "backend", "duration_s", "bundle",
    "shard",
})


class EventLogError(Exception):
    """A corrupt or incompatible event log (non-trailing damage)."""


class CampaignEvent:
    """One typed, sequenced campaign fact.

    Plain slots, picklable: worker-local event buffers cross process-pool
    boundaries inside the runner's result envelopes.
    """

    __slots__ = ("seq", "type", "time", "data")

    def __init__(self, seq: int, type: str, time: float,
                 data: Dict[str, Any]):
        self.seq = seq
        self.type = type
        self.time = time
        self.data = data

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "v": SCHEMA_VERSION,
            "seq": self.seq,
            "type": self.type,
            "time": self.time,
            "data": {key: self.data[key] for key in sorted(self.data)},
        }

    @classmethod
    def from_json_dict(cls, record: Dict[str, Any]) -> "CampaignEvent":
        version = record.get("v")
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            raise EventLogError(
                f"event record has schema version {version!r}; this reader "
                f"understands <= {SCHEMA_VERSION}")
        return cls(record["seq"], record["type"], record["time"],
                   dict(record.get("data", {})))

    def __repr__(self) -> str:
        return f"CampaignEvent(#{self.seq} {self.type} {self.data!r})"


class EventLog:
    """An append-only, watermarked stream of :class:`CampaignEvent`.

    ``clock`` is injectable (tests use a fake for byte-stable exports).
    With a ``path`` every emit appends one JSONL line and flushes -- the
    crash-safety contract.  ``buffer=False`` drops the in-memory copy
    (sequence numbers and the file keep advancing), for campaigns whose
    event volume should live on disk only; worker-local logs keep the
    default buffering because their events ship back in result envelopes.
    """

    def __init__(self, clock: Callable[[], float] = time.time,
                 path: Optional[str] = None, buffer: bool = True,
                 _start_seq: int = 0):
        self._clock = clock
        self.path = path
        self.buffer = buffer
        self.events: List[CampaignEvent] = []
        self._seq = _start_seq
        self._handle = None
        if path is not None:
            self._handle = open(path, "a", encoding="utf-8")

    # -- the write side ----------------------------------------------------

    @property
    def watermark(self) -> int:
        """Sequence number of the last appended (and flushed) event."""
        return self._seq

    def emit(self, event_type: str, **data: Any) -> CampaignEvent:
        """Append one event of a known type; returns the sequenced record."""
        if event_type not in EVENT_TYPES:
            raise EventLogError(
                f"unknown campaign event type {event_type!r} "
                f"(choose from {sorted(EVENT_TYPES)})")
        return self._append(event_type, self._clock(), data)

    def adopt(self, event: CampaignEvent,
              worker: str = "") -> CampaignEvent:
        """Re-sequence an event recorded elsewhere (a worker-local buffer).

        The worker's timestamp is preserved; the sequence number is this
        log's own (merge + resequence), and *worker* is recorded so merged
        streams keep their provenance.
        """
        data = dict(event.data)
        if worker:
            data.setdefault("worker", worker)
        return self._append(event.type, event.time, data)

    def adopt_all(self, events: Iterable[CampaignEvent],
                  worker: str = "") -> None:
        for event in events:
            self.adopt(event, worker=worker)

    def _append(self, event_type: str, timestamp: float,
                data: Dict[str, Any]) -> CampaignEvent:
        self._seq += 1
        event = CampaignEvent(self._seq, event_type, timestamp, data)
        if self.buffer:
            self.events.append(event)
        if self._handle is not None:
            self._handle.write(
                json.dumps(event.to_json_dict(), sort_keys=True,
                           default=str))
            self._handle.write("\n")
            self._handle.flush()
        return event

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> bool:
        self.close()
        return False

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The buffered stream as JSONL (byte-stable under a fake clock)."""
        return "".join(
            json.dumps(event.to_json_dict(), sort_keys=True, default=str)
            + "\n"
            for event in self.events)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    # -- resume ------------------------------------------------------------

    @classmethod
    def resume(cls, path: str,
               clock: Callable[[], float] = time.time,
               buffer: bool = True) -> "EventLog":
        """Reopen *path* for appending, continuing from its watermark.

        Only the watermark is recovered (the buffer starts empty): a
        resumed 10M-scenario campaign must not reload its whole history
        into memory to continue it.  Use :func:`read_events` to replay.
        """
        try:
            _, watermark = read_events(path)
        except FileNotFoundError:
            watermark = 0
        return cls(clock=clock, path=path, buffer=buffer,
                   _start_seq=watermark)

    def __repr__(self) -> str:
        return (f"EventLog(watermark={self._seq}, "
                f"buffered={len(self.events)}, path={self.path!r})")


# --------------------------------------------------------------------------
# readers
# --------------------------------------------------------------------------

def read_events(path: str) -> Tuple[List[CampaignEvent], int]:
    """Replay a JSONL event log: ``(events, watermark)``.

    Crash-safety contract: a truncated or half-written **trailing** line
    (the one a crash can produce) is skipped with a :class:`UserWarning`;
    damage anywhere else raises :class:`EventLogError`, because a hole in
    the middle means lost history, not an interrupted append.
    """
    with open(path, encoding="utf-8") as handle:
        content = handle.read()
    events: List[CampaignEvent] = []
    lines = content.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
            event = CampaignEvent.from_json_dict(record)
        except EventLogError:
            raise
        except Exception as exc:  # noqa: BLE001 - malformed line
            if index == len(lines) - 1:
                warnings.warn(
                    f"event log {path!r}: skipping truncated trailing line "
                    f"{index + 1} ({type(exc).__name__}); the campaign "
                    "crashed mid-append and resumes from the watermark",
                    stacklevel=2)
                break
            raise EventLogError(
                f"event log {path!r} is corrupt at line {index + 1} "
                f"(not the trailing line): {line[:80]!r}") from exc
        events.append(event)
    return events, events[-1].seq if events else 0


def tail_events(path: str, after: int = 0) -> List[CampaignEvent]:
    """Events with ``seq > after`` -- the incremental (tail) read.

    A live consumer remembers the last watermark it processed and calls
    this with it; repeated tails over a growing file see every event
    exactly once.
    """
    events, _ = read_events(path)
    return [event for event in events if event.seq > after]


def normalized_stream(
        events: Iterable[CampaignEvent],
        invariant_types: frozenset = INVARIANT_TYPES,
        volatile_keys: frozenset = VOLATILE_KEYS) -> List[Dict[str, Any]]:
    """The executor-invariant projection of an event stream.

    Keeps only event types whose data is a property of the batch, scrubs
    volatile keys (worker identity, pool shape, wall-clock durations) and
    sorts canonically -- after which serial, thread and process runs of
    the same batch produce **equal** streams, completion order and
    sharding notwithstanding.
    """
    normalized = []
    for event in events:
        if event.type not in invariant_types:
            continue
        data = {key: value for key, value in event.data.items()
                if key not in volatile_keys}
        normalized.append({"type": event.type, "data": data})
    normalized.sort(key=lambda entry: (
        entry["type"], json.dumps(entry["data"], sort_keys=True,
                                  default=str)))
    return normalized


# --------------------------------------------------------------------------
# live progress
# --------------------------------------------------------------------------

class CampaignProgress:
    """Folds an event stream into live campaign progress.

    Feed it events as they arrive (:meth:`observe`, or :meth:`observe_all`
    over a :func:`tail_events` batch); :meth:`format_progress` renders the
    current picture.  The fold is incremental -- tailing a growing log and
    replaying a finished one produce the same state.
    """

    def __init__(self) -> None:
        self.campaigns_started = 0
        self.campaigns_finished = 0
        self.expected = 0
        self.finished = 0
        self.failed = 0
        self.ticks = 0
        self.errors_by_kind: Dict[str, int] = {}
        self.last_round: Optional[Dict[str, Any]] = None
        self.watermark = 0

    def observe(self, event: CampaignEvent) -> None:
        self.watermark = max(self.watermark, event.seq)
        data = event.data
        if event.type == "campaign_started":
            self.campaigns_started += 1
            self.expected += int(data.get("scenarios", 0))
        elif event.type == "campaign_finished":
            self.campaigns_finished += 1
        elif event.type == "scenario_finished":
            self.finished += 1
            self.ticks += int(data.get("ticks", 0))
        elif event.type == "scenario_error":
            self.finished += 1
            self.failed += 1
            self.ticks += int(data.get("ticks", 0))
            kind = data.get("exc", "Unknown")
            self.errors_by_kind[kind] = self.errors_by_kind.get(kind, 0) + 1
        elif event.type == "search_round":
            self.last_round = dict(data)

    def observe_all(self, events: Iterable[CampaignEvent]) -> None:
        for event in events:
            self.observe(event)

    @classmethod
    def from_events(cls,
                    events: Iterable[CampaignEvent]) -> "CampaignProgress":
        progress = cls()
        progress.observe_all(events)
        return progress

    def format_progress(self, registry: Any = None, width: int = 30) -> str:
        """Human-readable progress: bar, counts, failures, coverage.

        With a :class:`~repro.obs.metrics.MetricsRegistry` the scenario
        duration quantiles (p50/p90/p99 via
        :meth:`~repro.obs.metrics.MetricsRegistry.histogram_quantiles`)
        and the ``runner.*`` instrument table
        (:func:`~repro.obs.metrics.format_metrics`) are appended.
        """
        lines: List[str] = []
        total = max(self.expected, self.finished)
        fraction = (self.finished / total) if total else 0.0
        filled = int(round(fraction * width))
        bar = "#" * filled + "-" * (width - filled)
        lines.append(
            f"campaign progress [{bar}] {self.finished}/{total} scenarios "
            f"({100.0 * fraction:.0f}%), {self.failed} failed, "
            f"{self.ticks} ticks, watermark #{self.watermark}")
        if self.campaigns_started:
            lines.append(
                f"  campaigns: {self.campaigns_finished}/"
                f"{self.campaigns_started} finished")
        if self.errors_by_kind:
            roll = ", ".join(f"{kind} x{count}" for kind, count
                             in sorted(self.errors_by_kind.items()))
            lines.append(f"  failures: {roll}")
        if self.last_round is not None:
            stats = self.last_round
            lines.append(
                f"  search round {stats.get('round')}: "
                f"{100.0 * float(stats.get('transition_coverage', 0)):.0f}% "
                f"transitions, "
                f"{100.0 * float(stats.get('mode_coverage', 0)):.0f}% modes, "
                f"corpus {stats.get('corpus_size')}")
        if registry is not None:
            quantiles = registry.histogram_quantiles(
                "runner.scenario.duration_s", (0.5, 0.9, 0.99))
            if quantiles[0] is not None:
                p50, p90, p99 = quantiles
                lines.append(
                    f"  scenario duration: p50 {p50:.6f}s  p90 {p90:.6f}s  "
                    f"p99 {p99:.6f}s")
            from .metrics import format_metrics
            lines.append(format_metrics(registry, prefix="runner."))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"CampaignProgress({self.finished}/{self.expected}, "
                f"failed={self.failed})")
