"""The ambient telemetry context: one switch, zero overhead when off.

Instrumentation sites across the engine stack (compile phases, the
sharded runner, the batch sweep, the search loop) consult ONE module
global through :func:`active` / :func:`current_registry` /
:func:`maybe_span`.  While observability is disabled (the default) every
such probe is a single global read returning ``None`` -- and, crucially,
no probe sits on a per-tick or per-op path: hot loops are instrumented by
**swapping in** an instrumented step variant when telemetry is enabled
(:meth:`~repro.simulation.schedule_ir.FlatSchedule.instrumented_step`),
never by branching inside the default one.  The default step functions
are byte-for-byte the uninstrumented closures;
``benchmarks/bench_obs_overhead.py`` gates the residual overhead of the
disabled probes at <= 5% and asserts the step object identity.

Usage::

    from repro import obs

    telemetry = obs.enable(profile_ops=True)
    simulator = CompiledSimulator(model, backend="flat")   # compile spans
    simulator.run(stimuli, ticks=1000)                     # op-level profile
    obs.disable()

    print(telemetry.registry.format_summary())
    for profile in telemetry.profiles.values():
        print(obs.format_profile(profile))
    telemetry.tracer.save_chrome_trace("trace.json")       # -> Perfetto

or scoped, restoring the previous state::

    with obs.session(profile_ops=True) as telemetry:
        ...

The context is process-global and intentionally simple: pool workers do
NOT inherit it -- the sharded runner forwards an enable flag and ships
worker-local registries back for merging (the cross-process aggregation
path), so no instrument is ever written from two processes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .metrics import MetricsRegistry
from .profile import OpProfile
from .tracing import Tracer


class Telemetry:
    """One enabled observability session: registry + tracer + op profiles
    + (optionally) a campaign event log and flight recording.

    ``profiles`` maps a schedule identity to its :class:`OpProfile`;
    profiles are created lazily by :meth:`profile_for` the first time an
    instrumentable schedule runs while ``profile_ops`` is set, and the
    instrumented step closures are cached per schedule so repeated runs
    keep accumulating into one profile.

    ``events`` is an optional :class:`~repro.obs.events.EventLog` the
    campaign layers (sharded runner, coverage search) emit into; ``None``
    (the default) means no event stream is recorded.  With
    ``flight_recording`` set, flat schedules run on a swapped-in
    :meth:`~repro.simulation.schedule_ir.FlatSchedule.recording_step`
    keeping the last ``ring_ticks`` slot snapshots per schedule
    (:attr:`recorders`); on scenario error the runner dumps a post-mortem
    bundle under ``postmortem_dir`` (default: ``$OBS_POSTMORTEM_DIR`` or
    the working directory) and appends its path to :attr:`bundles`.
    """

    __slots__ = ("registry", "tracer", "profile_ops", "profiles", "_steps",
                 "events", "flight_recording", "ring_ticks",
                 "postmortem_dir", "recorders", "_recording_steps",
                 "bundles")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 profile_ops: bool = False,
                 events: Optional[Any] = None,
                 flight_recording: bool = False,
                 ring_ticks: int = 16,
                 postmortem_dir: Optional[str] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.profile_ops = profile_ops
        self.profiles: Dict[int, OpProfile] = {}
        self._steps: Dict[int, Any] = {}
        self.events = events
        self.flight_recording = flight_recording
        self.ring_ticks = ring_ticks
        self.postmortem_dir = postmortem_dir
        self.recorders: Dict[int, Any] = {}
        self._recording_steps: Dict[int, Any] = {}
        self.bundles: list = []

    def profile_for(self, schedule: Any) -> Optional[OpProfile]:
        """The (lazily created) op profile of *schedule*, or ``None``.

        Returns ``None`` when op profiling is off or the schedule does not
        expose an op program (``op_labels()``): nested-only schedules run
        unprofiled, they are already observable through spans and metrics.
        """
        if not self.profile_ops:
            return None
        labels = getattr(schedule, "op_labels", None)
        if labels is None:
            return None
        key = id(schedule)
        profile = self.profiles.get(key)
        if profile is None:
            label = getattr(getattr(schedule, "component", None), "name",
                            type(schedule).__name__)
            profile = OpProfile(f"{label}[{getattr(schedule, 'kind', '?')}]",
                                labels())
            self.profiles[key] = profile
        return profile

    def instrumented_step(self, schedule: Any) -> Optional[Any]:
        """A cached instrumented step for *schedule*, or ``None`` when op
        profiling does not apply (callers then use ``schedule.step``)."""
        profile = self.profile_for(schedule)
        if profile is None or not hasattr(schedule, "instrumented_step"):
            return None
        key = id(schedule)
        step = self._steps.get(key)
        if step is None:
            step = self._steps[key] = schedule.instrumented_step(profile)
        return step

    def recorder_for(self, schedule: Any) -> Optional[Any]:
        """The (lazily created) flight recorder of *schedule*, or ``None``.

        Returns ``None`` when flight recording is off or the schedule has
        no ``recording_step`` (nested and batch schedules run unrecorded:
        forensics lives on the flat path, which is the default backend).
        """
        if not self.flight_recording \
                or not hasattr(schedule, "recording_step"):
            return None
        key = id(schedule)
        recorder = self.recorders.get(key)
        if recorder is None:
            from .recorder import FlightRecorder
            recorder = FlightRecorder(schedule, capacity=self.ring_ticks)
            self.recorders[key] = recorder
        return recorder

    def recording_step(self, schedule: Any) -> Optional[Any]:
        """A cached flight-recording step for *schedule*, or ``None``."""
        recorder = self.recorder_for(schedule)
        if recorder is None:
            return None
        key = id(schedule)
        step = self._recording_steps.get(key)
        if step is None:
            step = self._recording_steps[key] \
                = schedule.recording_step(recorder)
        return step

    def step_for(self, schedule: Any) -> Optional[Any]:
        """The step variant this session swaps in for *schedule*.

        Flight recording takes precedence over op profiling (forensics
        beats timing when both are requested; the recording step has no
        profile hooks).  ``None`` means run the default closure.
        """
        step = self.recording_step(schedule)
        if step is not None:
            return step
        return self.instrumented_step(schedule)

    def resolved_postmortem_dir(self) -> str:
        """Where post-mortem bundles land for this session."""
        if self.postmortem_dir is not None:
            return self.postmortem_dir
        import os
        return os.environ.get("OBS_POSTMORTEM_DIR", ".")

    def named_profiles(self) -> Dict[str, OpProfile]:
        """Profiles keyed by their human label (stable across processes)."""
        return {profile.label: profile for profile in self.profiles.values()}

    def __repr__(self) -> str:
        return (f"Telemetry(profile_ops={self.profile_ops}, "
                f"profiles={len(self.profiles)}, "
                f"events={'on' if self.events is not None else 'off'}, "
                f"flight_recording={self.flight_recording})")


#: THE switch: ``None`` means observability is off everywhere.
_ACTIVE: Optional[Telemetry] = None


def enable(registry: Optional[MetricsRegistry] = None,
           tracer: Optional[Tracer] = None,
           profile_ops: bool = False,
           events: Optional[Any] = None,
           flight_recording: bool = False,
           ring_ticks: int = 16,
           postmortem_dir: Optional[str] = None) -> Telemetry:
    """Install (and return) a fresh telemetry session as the active one."""
    global _ACTIVE
    _ACTIVE = Telemetry(registry, tracer, profile_ops, events=events,
                        flight_recording=flight_recording,
                        ring_ticks=ring_ticks,
                        postmortem_dir=postmortem_dir)
    return _ACTIVE


def disable() -> Optional[Telemetry]:
    """Switch observability off; returns the session that was active."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def is_enabled() -> bool:
    return _ACTIVE is not None


def active() -> Optional[Telemetry]:
    """The active telemetry session, or ``None`` (the common fast path)."""
    return _ACTIVE


def current_registry() -> Optional[MetricsRegistry]:
    telemetry = _ACTIVE
    return telemetry.registry if telemetry is not None else None


def current_tracer() -> Optional[Tracer]:
    telemetry = _ACTIVE
    return telemetry.tracer if telemetry is not None else None


def current_events() -> Optional[Any]:
    """The active session's campaign event log, or ``None``.

    ``None`` both when observability is off and when the session was
    enabled without an event log -- callers emit only when this returns a
    log, so the disabled cost stays one global read.
    """
    telemetry = _ACTIVE
    return telemetry.events if telemetry is not None else None


class _NullSpan:
    """Shared no-op context manager handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def maybe_span(name: str, **attributes: Any) -> Any:
    """A tracer span when observability is on, a shared no-op otherwise.

    The ``with maybe_span(...) as span:`` body must tolerate ``span is
    None`` (the disabled case).  Cost when disabled: one global read and
    one call -- which is why this helper only appears on compile-, run-
    and sweep-level paths, never per tick.
    """
    telemetry = _ACTIVE
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.tracer.span(name, **attributes)


@contextmanager
def session(registry: Optional[MetricsRegistry] = None,
            tracer: Optional[Tracer] = None,
            profile_ops: bool = False,
            events: Optional[Any] = None,
            flight_recording: bool = False,
            ring_ticks: int = 16,
            postmortem_dir: Optional[str] = None) -> Iterator[Telemetry]:
    """Scoped :func:`enable` that restores the previous state on exit."""
    global _ACTIVE
    previous = _ACTIVE
    telemetry = Telemetry(registry, tracer, profile_ops, events=events,
                          flight_recording=flight_recording,
                          ring_ticks=ring_ticks,
                          postmortem_dir=postmortem_dir)
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
