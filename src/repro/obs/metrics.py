"""Deterministic metrics primitives: counters, gauges, histograms, registry.

The observability substrate of the engine stack is built on one rule: a
metric fold must be **order-insensitive and shard-insensitive**, exactly
like :meth:`repro.scenarios.report.BatchReport.merge`.  Counters add,
gauges keep the maximum, histogram bucket counts add -- so merging the
registries of N pool workers (in any completion order) yields the same
registry as one serial pass over the same work.  That is what lets the
sharded runner return worker-local registries alongside its
:class:`~repro.scenarios.runner.ScenarioResult` batches and fold them in
the parent without a synchronization protocol.

Histograms use **fixed, declared bucket bounds** (no adaptive resizing):
two histograms observing the same values always have identical bucket
counts, regardless of observation order, which keeps the JSON export
byte-comparable across runs and hosts.

Everything here is picklable (plain attributes, no closures), so a
registry can cross a process-pool boundary as-is.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default bucket upper bounds (seconds) for duration histograms: spans six
#: decades, from sub-100us op batches to multi-minute campaign sweeps.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0)


class Counter:
    """A monotonically increasing sum (ints or floats)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))")
        self.value += amount

    def to_json_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value!r})"


class Gauge:
    """A last-written value; merges keep the maximum (order-insensitive)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Optional[float] = None):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def to_json_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value!r})"


class Histogram:
    """A fixed-bucket histogram: deterministic counts, mergeable.

    ``bounds`` are the inclusive upper bounds of the finite buckets; one
    overflow bucket catches everything above the last bound.  ``counts``
    has ``len(bounds) + 1`` entries.  ``sum`` and ``count`` track the
    classic totals; ``min``/``max`` the observed extremes.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DURATION_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r} needs sorted, non-empty bucket bounds")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """A deterministic quantile estimate from the fixed buckets.

        Linear interpolation within the bucket holding the q-th
        observation, with the observed ``min``/``max`` tightening the
        first and overflow buckets.  Estimates depend only on the bucket
        counts and extremes -- identical for any observation order and
        for merged registries, like every other fold here.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        target = q * self.count
        cumulative = 0.0
        lower = self.min
        for index, count in enumerate(self.counts):
            upper = self.bounds[index] if index < len(self.bounds) \
                else self.max
            upper = min(upper, self.max)
            if count:
                if cumulative + count >= target:
                    fraction = (target - cumulative) / count
                    value = lower + fraction * (upper - lower)
                    return min(max(value, self.min), self.max)
                cumulative += count
                lower = upper
            elif index < len(self.bounds):
                lower = max(lower, min(self.bounds[index], self.max))
        return self.max

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} "
                f"(bounds {other.bounds}) into {self.name!r} "
                f"(bounds {self.bounds})")
        self.count += other.count
        self.sum += other.sum
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        for bound in (other.min, other.max):
            if bound is None:
                continue
            self.min = bound if self.min is None else min(self.min, bound)
            self.max = bound if self.max is None else max(self.max, bound)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"sum={self.sum:g})")


class MetricsRegistry:
    """A named pool of counters, gauges and histograms with JSON export.

    Instruments are created on first access (``registry.counter("x")``)
    and identified by name; re-requesting a name returns the same
    instrument.  :meth:`merge` folds another registry in element-wise
    (counters add, gauges keep the max, histograms add bucket-wise), which
    is the cross-process aggregation contract: merging worker registries
    in any order equals one serial registry over the same observations.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  bounds: Sequence[float] = DURATION_BUCKETS) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, bounds)
        return instrument

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry (see class docstring)."""
        for name, counter in other.counters.items():
            self.counter(name).value += counter.value
        for name, gauge in other.gauges.items():
            if gauge.value is None:
                continue
            mine = self.gauge(name)
            mine.value = gauge.value if mine.value is None \
                else max(mine.value, gauge.value)
        for name, histogram in other.histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)
        return self

    def histogram_quantiles(
            self, name: str,
            qs: Sequence[float]) -> List[Optional[float]]:
        """Quantile estimates of histogram *name*, one per entry of *qs*.

        ``[None, ...]`` when the histogram does not exist or is empty, so
        renderers can probe without pre-checking.  Estimates come from
        :meth:`Histogram.quantile` and are deterministic under merge.
        """
        histogram = self.histograms.get(name)
        if histogram is None or histogram.count == 0:
            return [None] * len(qs)
        return [histogram.quantile(q) for q in qs]

    def counter_values(self, prefix: str = "") -> Dict[str, float]:
        """Counter name -> value, optionally restricted to a name prefix.

        The executor-equivalence tests compare this projection: counters
        under ``runner.scenario.`` are per-scenario facts and therefore
        identical across serial / thread / process execution, while
        sweep- and shard-level instruments legitimately depend on the
        sharding.
        """
        return {name: counter.value
                for name, counter in sorted(self.counters.items())
                if name.startswith(prefix)}

    # -- export ------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "counters": [self.counters[name].to_json_dict()
                         for name in sorted(self.counters)],
            "gauges": [self.gauges[name].to_json_dict()
                       for name in sorted(self.gauges)],
            "histograms": [self.histograms[name].to_json_dict()
                           for name in sorted(self.histograms)],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_json_dict` output (round-trip)."""
        registry = cls()
        for entry in data.get("counters", ()):
            registry.counter(entry["name"]).value = entry["value"]
        for entry in data.get("gauges", ()):
            registry.gauge(entry["name"]).value = entry["value"]
        for entry in data.get("histograms", ()):
            histogram = registry.histogram(entry["name"],
                                           tuple(entry["bounds"]))
            histogram.counts = list(entry["counts"])
            histogram.count = entry["count"]
            histogram.sum = entry["sum"]
            histogram.min = entry["min"]
            histogram.max = entry["max"]
        return registry

    def format_summary(self) -> str:
        """Human-readable one-line-per-instrument rendering."""
        lines: List[str] = ["metrics:"]
        for name in sorted(self.counters):
            lines.append(f"  {name} = {self.counters[name].value:g}")
        for name in sorted(self.gauges):
            value = self.gauges[name].value
            rendered = "unset" if value is None else f"{value:g}"
            lines.append(f"  {name} = {rendered} (gauge)")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            if histogram.count:
                lines.append(
                    f"  {name}: n={histogram.count} sum={histogram.sum:.6f} "
                    f"mean={histogram.mean():.6f} "
                    f"[{histogram.min:.6f} .. {histogram.max:.6f}]")
            else:
                lines.append(f"  {name}: n=0")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self.counters)}, "
                f"gauges={len(self.gauges)}, "
                f"histograms={len(self.histograms)})")


def format_metrics(registry: MetricsRegistry, prefix: str = "",
                   quantiles: Sequence[float] = (0.5, 0.9, 0.99)) -> str:
    """An aligned text table of a registry's instruments.

    Counters and gauges render name/value; histograms add count, mean,
    the requested quantiles (via :meth:`Histogram.quantile`) and max.
    *prefix* restricts the table to one instrument family (the progress
    renderer shows ``runner.``).  Empty sections are omitted.
    """
    def rows_of(names: Sequence[str]) -> List[str]:
        return [name for name in sorted(names) if name.startswith(prefix)]

    counter_names = rows_of(registry.counters)
    gauge_names = rows_of(registry.gauges)
    histogram_names = rows_of(registry.histograms)
    width = max((len(name) for name
                 in counter_names + gauge_names + histogram_names),
                default=0)
    lines: List[str] = []
    if counter_names or gauge_names:
        lines.append(f"  {'instrument':<{width}}  value")
        for name in counter_names:
            lines.append(
                f"  {name:<{width}}  {registry.counters[name].value:g}")
        for name in gauge_names:
            value = registry.gauges[name].value
            rendered = "unset" if value is None else f"{value:g}"
            lines.append(f"  {name:<{width}}  {rendered} (gauge)")
    if histogram_names:
        header = "".join(f"  {f'p{100 * q:g}':>10}" for q in quantiles)
        lines.append(f"  {'histogram':<{width}}  {'n':>6}  {'mean':>10}"
                     f"{header}  {'max':>10}")
        for name in histogram_names:
            histogram = registry.histograms[name]
            if not histogram.count:
                lines.append(f"  {name:<{width}}  {0:>6}")
                continue
            cells = "".join(f"  {histogram.quantile(q):>10.6f}"
                            for q in quantiles)
            lines.append(
                f"  {name:<{width}}  {histogram.count:>6}  "
                f"{histogram.mean():>10.6f}{cells}  "
                f"{histogram.max:>10.6f}")
    return "\n".join(lines) if lines else "  (no instruments)"
