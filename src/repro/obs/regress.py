"""Bench-regression tracking: a gated, plotted series over BENCH artifacts.

The benchmark harness writes one ``BENCH_<name>.json`` per gate
(:func:`benchmarks._bench_utils.write_bench_json`), but between runs the
performance trajectory is invisible: each CI run sees only its own
numbers.  This module turns the artifacts into a **history** -- an
append-only JSON file of per-run gated metrics -- and a **check**: current
medians are compared against a baseline (the median of the last few
recorded runs) with a configurable tolerance, a trend table renders the
series, and ``--check`` exits non-zero on regression.  Wired as the CI
``bench-regress`` job::

    PYTHONPATH=src python -m repro.obs.regress --check \\
        --bench-dir bench-artifacts --history bench-artifacts/BENCH_history.json

**Which metrics gate.**  Bench payloads are flattened to dotted numeric
keys (the embedded ``observability`` telemetry is skipped); a key gates
when it contains ``median`` (the cross-run statistic the harness records
precisely for this purpose, see ``time_median``) AND its improvement
direction is inferable from its name -- ``*seconds*``/``*duration*`` are
lower-is-better, ``*per_second*``/``*speedup*`` higher-is-better.
Everything else is tracked in the history but never gates, so adding an
exotic payload key cannot fail CI by accident.

The baseline is the **median of the last ``window`` recorded runs**, so a
single noisy CI run neither poisons the baseline nor (because the check
compares against history, not the previous run alone) trips the gate.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

HISTORY_SCHEMA_VERSION = 1

#: Substring marking a metric as gate-worthy (median statistics only:
#: best-of and single-shot numbers are too noisy to fail CI on).
GATE_TOKEN = "median"

#: Name fragments implying lower-is-better / higher-is-better.
LOWER_TOKENS = ("seconds", "duration", "time_s", "overhead", "latency")
HIGHER_TOKENS = ("per_second", "per_sec", "speedup", "rate", "throughput")

#: Payload keys never flattened into metrics (embedded telemetry).
SKIP_KEYS = ("observability",)


def metric_direction(key: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` (is better), or ``None`` if unknown.

    Higher-is-better tokens win ties (``ticks_per_second_median`` contains
    ``seconds`` only as part of ``per_second``).
    """
    lowered = key.lower()
    if any(token in lowered for token in HIGHER_TOKENS):
        return "higher"
    if any(token in lowered for token in LOWER_TOKENS):
        return "lower"
    return None


def flatten_numeric(payload: Any, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a bench payload as sorted dotted keys."""
    flat: Dict[str, float] = {}
    if not isinstance(payload, dict):
        return flat
    for key in sorted(payload):
        if not prefix and key in SKIP_KEYS:
            continue
        value = payload[key]
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, dict):
            flat.update(flatten_numeric(value, path))
    return flat


def gated_metrics(flat: Dict[str, float]) -> Dict[str, float]:
    """The subset of flattened metrics the regression gate watches."""
    return {key: value for key, value in flat.items()
            if GATE_TOKEN in key.lower()
            and metric_direction(key) is not None}


def load_bench_dir(directory: str) -> Dict[str, Dict[str, float]]:
    """``{bench name: flattened numeric metrics}`` from ``BENCH_*.json``."""
    benches: Dict[str, Dict[str, float]] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        if name == "history":  # the history file is not a bench artifact
            continue
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        benches[name] = flatten_numeric(payload)
    return benches


class BenchHistory:
    """The append-only run history backing baselines and trend tables."""

    def __init__(self, path: str):
        self.path = path
        self.data: Dict[str, Any] = {
            "schema_version": HISTORY_SCHEMA_VERSION, "runs": []}
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("schema_version", 0) > HISTORY_SCHEMA_VERSION:
                raise ValueError(
                    f"bench history {path!r} has schema version "
                    f"{data.get('schema_version')!r}; this reader "
                    f"understands <= {HISTORY_SCHEMA_VERSION}")
            self.data = data
            self.data.setdefault("runs", [])

    @property
    def runs(self) -> List[Dict[str, Any]]:
        return self.data["runs"]

    def record_run(self, benches: Dict[str, Dict[str, float]],
                   label: str = "",
                   timestamp: Optional[float] = None) -> Dict[str, Any]:
        """Append one run (gated metrics only, keeping the file compact)."""
        run = {
            "timestamp": time.time() if timestamp is None else timestamp,
            "label": label,
            "benches": {name: gated_metrics(flat)
                        for name, flat in sorted(benches.items())},
        }
        self.runs.append(run)
        return run

    def series(self, bench: str, metric: str) -> List[float]:
        """Every recorded value of one metric, oldest first."""
        values = []
        for run in self.runs:
            value = run.get("benches", {}).get(bench, {}).get(metric)
            if value is not None:
                values.append(value)
        return values

    def baseline(self, bench: str, metric: str,
                 window: int = 5) -> Optional[float]:
        """Median of the last *window* recorded values, or ``None``."""
        values = self.series(bench, metric)[-window:]
        return statistics.median(values) if values else None

    def save(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(self.data, handle, indent=2, sort_keys=True)
            handle.write("\n")


@dataclass
class RegressionFinding:
    """One gated metric compared against its history baseline.

    ``worse`` is the signed degradation fraction (positive = worse,
    direction-adjusted); ``regressed`` is ``worse > tolerance``.
    """

    bench: str
    metric: str
    direction: str
    baseline: Optional[float]
    current: float
    worse: float
    regressed: bool


def check_regressions(history: BenchHistory,
                      benches: Dict[str, Dict[str, float]],
                      tolerance: float = 0.25,
                      window: int = 5) -> List[RegressionFinding]:
    """Compare every gated metric of *benches* against its baseline.

    Metrics with no recorded history (first run, renamed key) yield a
    finding with ``baseline=None`` that never regresses -- the gate only
    has teeth once a series exists.
    """
    findings: List[RegressionFinding] = []
    for bench in sorted(benches):
        for metric, current in sorted(gated_metrics(benches[bench]).items()):
            direction = metric_direction(metric) or "lower"
            baseline = history.baseline(bench, metric, window)
            if baseline is None or baseline == 0:
                findings.append(RegressionFinding(
                    bench, metric, direction, baseline, current, 0.0, False))
                continue
            delta = (current - baseline) / abs(baseline)
            worse = delta if direction == "lower" else -delta
            findings.append(RegressionFinding(
                bench, metric, direction, baseline, current, worse,
                worse > tolerance))
    return findings


def format_trend(history: BenchHistory,
                 findings: Sequence[RegressionFinding],
                 window: int = 5) -> str:
    """The trend table: per gated metric, history, baseline, verdict."""
    if not findings:
        return "no gated bench metrics found (nothing to track)"
    name_width = max(len(f"{finding.bench}.{finding.metric}")
                     for finding in findings)
    lines = [f"{'metric':<{name_width}}  {'dir':<6}  {'baseline':>12}  "
             f"{'current':>12}  {'change':>8}  {'runs':>4}  trend"]
    for finding in findings:
        name = f"{finding.bench}.{finding.metric}"
        series = history.series(finding.bench, finding.metric)
        spark = " ".join(f"{value:.4g}" for value in series[-window:])
        baseline = ("(none)" if finding.baseline is None
                    else f"{finding.baseline:.6g}")
        change = f"{100.0 * finding.worse:+.1f}%"
        verdict = "  << REGRESSED" if finding.regressed else ""
        lines.append(
            f"{name:<{name_width}}  {finding.direction:<6}  {baseline:>12}  "
            f"{finding.current:>12.6g}  {change:>8}  {len(series):>4}  "
            f"[{spark}]{verdict}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Track BENCH_*.json artifacts against a history "
                    "baseline and flag median regressions.")
    parser.add_argument("--bench-dir", default=".",
                        help="directory holding BENCH_*.json artifacts")
    parser.add_argument("--history", default="BENCH_history.json",
                        help="history file to read and append to")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional degradation before a "
                             "metric counts as regressed (default 0.25)")
    parser.add_argument("--window", type=int, default=5,
                        help="history runs forming the baseline median")
    parser.add_argument("--label", default="",
                        help="label stored with this run (e.g. a commit)")
    parser.add_argument("--timestamp", type=float, default=None,
                        help="override the recorded timestamp "
                             "(deterministic histories in tests)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when any metric regressed")
    parser.add_argument("--no-record", action="store_true",
                        help="compare only; do not append this run")
    args = parser.parse_args(argv)

    benches = load_bench_dir(args.bench_dir)
    if not benches:
        print(f"regress: no BENCH_*.json artifacts under "
              f"{args.bench_dir!r}; nothing to check")
        return 0
    history = BenchHistory(args.history)
    findings = check_regressions(history, benches,
                                 tolerance=args.tolerance,
                                 window=args.window)
    if not args.no_record:
        history.record_run(benches, label=args.label,
                          timestamp=args.timestamp)
        history.save()
    print(format_trend(history, findings, window=args.window))
    regressed = [finding for finding in findings if finding.regressed]
    if regressed:
        print(f"\nregress: {len(regressed)} metric(s) beyond "
              f"{100.0 * args.tolerance:.0f}% tolerance:")
        for finding in regressed:
            print(f"  {finding.bench}.{finding.metric}: "
                  f"{finding.baseline:.6g} -> {finding.current:.6g} "
                  f"({100.0 * finding.worse:+.1f}%, {finding.direction} "
                  f"is better)")
        if args.check:
            return 1
    else:
        print(f"\nregress: all {len(findings)} gated metric(s) within "
              f"{100.0 * args.tolerance:.0f}% of baseline "
              f"({len(history.runs)} run(s) in history)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
