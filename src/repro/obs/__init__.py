"""``repro.obs``: zero-overhead-when-off telemetry for the engine stack.

Three primitives and one switch:

* :class:`MetricsRegistry` -- counters, gauges and deterministic
  fixed-bucket histograms with order-insensitive :meth:`~MetricsRegistry.merge`
  (the cross-process aggregation contract of the sharded runner);
* :class:`Tracer` -- nested spans over an injectable clock, exported as a
  span-tree JSON or Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``);
* :class:`OpProfile` -- op-level attribution of flat-IR step programs
  (per-op counts/times, gate skip rates, correction re-runs,
  nested-fallback and batch scalar-fallback activity), rendered by
  :func:`format_profile` / :func:`format_backend_comparison`;
* :func:`enable` / :func:`disable` / :func:`session` -- the process-global
  switch.  While off (the default), the engines run their untouched step
  closures and every probe is one global read; see
  :mod:`repro.obs.context` for the contract and
  ``benchmarks/bench_obs_overhead.py`` for the gate.
"""

from .context import (Telemetry, active, current_registry, current_tracer,
                      disable, enable, is_enabled, maybe_span, session)
from .metrics import (DURATION_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry)
from .profile import OpProfile, format_backend_comparison, format_profile
from .tracing import Span, Tracer, span_from_json_dict

__all__ = [
    "Counter", "DURATION_BUCKETS", "Gauge", "Histogram", "MetricsRegistry",
    "OpProfile", "Span", "Telemetry", "Tracer", "active", "current_registry",
    "current_tracer", "disable", "enable", "format_backend_comparison",
    "format_profile", "is_enabled", "maybe_span", "session",
    "span_from_json_dict",
]
