"""``repro.obs``: zero-overhead-when-off telemetry for the engine stack.

The in-process primitives and one switch:

* :class:`MetricsRegistry` -- counters, gauges and deterministic
  fixed-bucket histograms with order-insensitive :meth:`~MetricsRegistry.merge`
  (the cross-process aggregation contract of the sharded runner); quantile
  estimates via :meth:`~MetricsRegistry.histogram_quantiles`, tables via
  :func:`format_metrics`;
* :class:`Tracer` -- nested spans over an injectable clock, exported as a
  span-tree JSON or Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``; worker-tagged spans get their own tracks);
* :class:`OpProfile` -- op-level attribution of flat-IR step programs
  (per-op counts/times, gate skip rates, correction re-runs,
  nested-fallback and batch scalar-fallback activity), rendered by
  :func:`format_profile` / :func:`format_backend_comparison`;
* :func:`enable` / :func:`disable` / :func:`session` -- the process-global
  switch.  While off (the default), the engines run their untouched step
  closures and every probe is one global read; see
  :mod:`repro.obs.context` for the contract and
  ``benchmarks/bench_obs_overhead.py`` for the gate.

And the campaign flight-recorder layer on top:

* :class:`EventLog` -- typed, schema-versioned, crash-safe campaign events
  with monotonic sequence numbers and a watermark; replay/tail readers
  (:func:`read_events` / :func:`tail_events`), the executor-invariant
  :func:`normalized_stream` projection, and :class:`CampaignProgress`
  for live progress rendering;
* :class:`FlightRecorder` -- last-K-tick slot snapshots of flat schedules
  via a swapped-in recording step; post-mortem bundles on scenario error
  (``obs.enable(flight_recording=True)``);
* :mod:`repro.obs.regress` -- bench-regression tracking over
  ``BENCH_*.json`` artifacts (``python -m repro.obs.regress --check``).
"""

from .context import (Telemetry, active, current_events, current_registry,
                      current_tracer, disable, enable, is_enabled,
                      maybe_span, session)
from .events import (EVENT_TYPES, CampaignEvent, CampaignProgress, EventLog,
                     EventLogError, normalized_stream, read_events,
                     tail_events)
from .metrics import (DURATION_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, format_metrics)
from .profile import OpProfile, format_backend_comparison, format_profile
from .recorder import FlightRecorder, read_bundle
from .tracing import Span, Tracer, span_from_json_dict

__all__ = [
    "CampaignEvent", "CampaignProgress", "Counter", "DURATION_BUCKETS",
    "EVENT_TYPES", "EventLog", "EventLogError", "FlightRecorder", "Gauge",
    "Histogram", "MetricsRegistry", "OpProfile", "Span", "Telemetry",
    "Tracer", "active", "current_events", "current_registry",
    "current_tracer", "disable", "enable", "format_backend_comparison",
    "format_metrics", "format_profile", "is_enabled", "maybe_span",
    "normalized_stream", "read_bundle", "read_events", "session",
    "span_from_json_dict", "tail_events",
]
