"""Failure forensics: a flight recorder over the flat slot environment.

When a scenario dies at tick 40 231 of a 10M-scenario campaign, the error
string ("division by zero in 'ratio'") is the *what*; the forensics
question is the *state*: which values sat in which slots for the last few
ticks, which op was executing, what the stimulus looked like.  The
:class:`FlightRecorder` answers it with a bounded ring buffer of the last
K tick slot-environment snapshots, captured by
:meth:`~repro.simulation.schedule_ir.FlatSchedule.recording_step` -- a
**swapped-in** step variant built on demand, exactly like
``instrumented_step``: the default step closure is never touched and the
overhead-when-off bench asserts its identity, so recording costs nothing
until a telemetry session asks for it
(``obs.enable(flight_recording=True)``).

On scenario error the runner dumps a **post-mortem bundle**: a JSON
artifact holding the ring contents with slot names decoded from the
flattener's slot table, the failing op (index + ``op_labels`` label), the
partial slot environment at the moment of the raise, the stimulus, the
active span path and a metrics snapshot.  Snapshots are plain copies of
the slot list, so re-running the scenario against a fresh recorder
reproduces them exactly up to the failing tick -- the replay property the
forensics tests pin.
"""

from __future__ import annotations

import json
import os
import re
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Version stamped into every post-mortem bundle.
BUNDLE_SCHEMA_VERSION = 1

#: Default ring capacity: how many trailing ticks a bundle replays.
DEFAULT_RING_TICKS = 16

_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def _render_value(value: Any) -> Any:
    """A JSON-safe rendering of one slot value.

    JSON scalars pass through; everything else (including the ABSENT
    sentinel) becomes a deterministic ``repr`` with object addresses
    scrubbed, so bundles from replayed runs compare byte-equal.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return _ADDRESS.sub("", repr(value))


def _render_env(values: List[Any], names: Tuple[str, ...]) -> Dict[str, Any]:
    """One slot environment as ``{decoded slot name: rendered value}``."""
    return {(names[slot] if slot < len(names) else f"slot{slot}"):
            _render_value(value) for slot, value in enumerate(values)}


class FlightRecorder:
    """Ring buffer of the last K tick snapshots of one flat schedule.

    One recorder per schedule per telemetry session (cached by
    :meth:`~repro.obs.context.Telemetry.recording_step`); the swapped-in
    step clears the ring at tick 0, so within a battery each scenario's
    forensics window is its own.
    """

    __slots__ = ("schedule", "capacity", "snapshots", "failure")

    def __init__(self, schedule: Any, capacity: int = DEFAULT_RING_TICKS):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.schedule = schedule
        self.capacity = capacity
        #: (tick, copy of the slot list at end of tick), oldest first.
        self.snapshots: Deque[Tuple[int, List[Any]]] = deque(maxlen=capacity)
        #: Set by the recording step when an op raises; see
        #: :meth:`record_failure`.
        self.failure: Optional[Dict[str, Any]] = None

    # -- hooks called by the recording step --------------------------------

    def begin_run(self) -> None:
        """A new scenario starts (tick 0): the window belongs to it."""
        self.snapshots.clear()
        self.failure = None

    def record_tick(self, tick: int, values: List[Any]) -> None:
        self.snapshots.append((tick, list(values)))

    def record_failure(self, tick: int, op_index: int, values: List[Any],
                       inputs: Any, exc: BaseException) -> None:
        self.failure = {
            "tick": tick,
            "op_index": op_index,
            "values": list(values),
            "inputs": dict(inputs),
            "error": f"{type(exc).__name__}: {exc}",
        }

    # -- the post-mortem bundle --------------------------------------------

    def bundle(self, scenario: str = "", error: str = "",
               stimuli: Any = None, span_path: Optional[List[str]] = None,
               registry: Any = None) -> Dict[str, Any]:
        """The JSON-safe post-mortem bundle of the current window."""
        schedule = self.schedule
        names: Tuple[str, ...] = tuple(
            getattr(schedule, "slot_names", ()) or ())
        failing: Optional[Dict[str, Any]] = None
        if self.failure is not None:
            op_index = self.failure["op_index"]
            labels = schedule.op_labels()
            kind, label, _nested = (labels[op_index]
                                    if 0 <= op_index < len(labels)
                                    else ("?", f"op {op_index}", False))
            failing = {
                "tick": self.failure["tick"],
                "op_index": op_index,
                "op_kind": kind,
                "op_label": label,
                "error": self.failure["error"],
                "partial_slots": _render_env(self.failure["values"], names),
                "inputs": {key: _render_value(value) for key, value
                           in sorted(self.failure["inputs"].items())},
            }
        return {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "kind": "postmortem",
            "component": getattr(
                getattr(schedule, "component", None), "name", "?"),
            "scenario": scenario,
            "error": error,
            "ring_capacity": self.capacity,
            "ring": [{"tick": tick, "slots": _render_env(values, names)}
                     for tick, values in self.snapshots],
            "failing": failing,
            "stimuli": {key: _render_value(value) for key, value
                        in sorted(dict(stimuli or {}).items())},
            "span_path": list(span_path or []),
            "metrics": registry.to_json_dict() if registry is not None
            else {},
        }

    def dump_bundle(self, directory: str, scenario: str = "",
                    error: str = "", stimuli: Any = None,
                    span_path: Optional[List[str]] = None,
                    registry: Any = None) -> str:
        """Write the bundle as ``POSTMORTEM_<scenario>.json``; returns path.

        The file name is deterministic (scenario names are unique within a
        battery), so a re-run overwrites its own bundle instead of
        accumulating stale ones.
        """
        os.makedirs(directory, exist_ok=True)
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", scenario) or "scenario"
        path = os.path.join(directory, f"POSTMORTEM_{safe}.json")
        payload = self.bundle(scenario=scenario, error=error,
                              stimuli=stimuli, span_path=span_path,
                              registry=registry)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def __repr__(self) -> str:
        return (f"FlightRecorder({getattr(self.schedule, 'component', None)!r}"
                f", ticks={len(self.snapshots)}/{self.capacity}, "
                f"failed={self.failure is not None})")


def read_bundle(path: str) -> Dict[str, Any]:
    """Load a post-mortem bundle written by :meth:`FlightRecorder.dump_bundle`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
