"""Span-based tracing with JSON and Chrome trace-event export.

A :class:`Tracer` records a tree of timed spans: compile phases (flatten,
closure lowering, batch lowering), scenario executions, batch sweeps,
search rounds.  Spans nest through a plain stack -- ``tracer.span(...)``
inside an open span becomes its child -- and serialize two ways:

* :meth:`Tracer.to_json_dict` -- the span *tree*, for programmatic
  consumption and round-tripping (:func:`span_from_json_dict`);
* :meth:`Tracer.to_chrome_trace` -- flat ``"X"`` (complete) events in the
  Chrome trace-event format, loadable in Perfetto / ``chrome://tracing``.

The clock is injectable (``Tracer(clock=...)``): production uses
``time.perf_counter``, tests use a fake monotonic counter, which makes
both exports **byte-stable** -- the serialization tests pin this.  Span
timestamps are whatever the clock returns (seconds); Chrome events
convert to integer microseconds relative to the tracer's first span, so
traces from different hosts align at zero.

A tracer is deliberately not thread-safe: the runner gives each worker
its own telemetry and merges afterwards, mirroring the metrics contract.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional


class Span:
    """One timed, attributed region; children are spans opened inside it."""

    __slots__ = ("name", "start", "end", "attributes", "children")

    def __init__(self, name: str, start: float,
                 attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []

    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": {key: self.attributes[key]
                           for key in sorted(self.attributes)},
            "children": [child.to_json_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration():.6f}s)"


def span_from_json_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a span tree from :meth:`Span.to_json_dict` output."""
    span = Span(data["name"], data["start"], data.get("attributes"))
    span.end = data.get("end")
    span.children = [span_from_json_dict(child)
                     for child in data.get("children", ())]
    return span


class _SpanContext:
    """Context manager closing one span on exit (error-annotating)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> bool:
        if exc_type is not None:
            self._span.attributes["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer._close(self._span)  # noqa: SLF001 - own pair
        return False


class Tracer:
    """Records a forest of nested spans against an injectable clock."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span; use as ``with tracer.span("compile.flat") as s:``."""
        span = Span(name, self._clock(), attributes)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        # tolerate out-of-order closes (a crashed child left open): pop to
        # and including the span being closed
        while self._stack:
            if self._stack.pop() is span:
                break

    def adopt(self, span: Span) -> None:
        """Attach an externally built (e.g. deserialized) span tree."""
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def active_path(self) -> List[str]:
        """Names of the currently open spans, outermost first.

        The "where were we" of a post-mortem bundle: the span stack at the
        moment a scenario error was dumped.
        """
        return [span.name for span in self._stack]

    # -- export ------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {"spans": [root.to_json_dict() for root in self.roots]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    def to_chrome_trace(self, pid: int = 0, tid: int = 0,
                        process_name: str = "repro") -> Dict[str, Any]:
        """The span forest as Chrome trace-event JSON (Perfetto-loadable).

        Spans become ``"X"`` (complete) events with integer-microsecond
        ``ts``/``dur`` relative to the earliest span start.  ``pid``/``tid``
        default to 0 so the export stays byte-stable under a fake clock;
        pass ``os.getpid()`` for real multi-process traces.

        Spans carrying a ``worker`` attribute (trees the sharded runner
        adopted from pool workers) are assigned a distinct ``tid`` per
        worker -- in sorted worker order, so numbering is deterministic --
        and the tid is inherited by their subtrees.  Each worker track is
        named via a ``thread_name`` metadata event, so merged
        multi-process traces render as parallel Perfetto tracks instead
        of collapsing onto one.
        """
        events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": process_name},
        }]
        workers = sorted({span.attributes["worker"] for span in self.walk()
                          if "worker" in span.attributes})
        worker_tids = {worker: tid + 1 + index
                       for index, worker in enumerate(workers)}
        for worker in workers:
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": worker_tids[worker],
                "args": {"name": f"worker {worker}"},
            })
        epoch = min((span.start for span in self.walk()), default=0.0)
        stack = [(root, tid) for root in reversed(self.roots)]
        while stack:
            span, span_tid = stack.pop()
            worker = span.attributes.get("worker")
            if worker is not None:
                span_tid = worker_tids[worker]
            end = span.end if span.end is not None else span.start
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": int(round((span.start - epoch) * 1_000_000)),
                "dur": int(round((end - span.start) * 1_000_000)),
                "pid": pid,
                "tid": span_tid,
                "args": {key: _json_safe(value)
                         for key, value in sorted(span.attributes.items())},
            })
            stack.extend((child, span_tid)
                         for child in reversed(span.children))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(self, pid: int = 0, tid: int = 0,
                       indent: int = 2) -> str:
        return json.dumps(self.to_chrome_trace(pid=pid, tid=tid),
                          indent=indent, sort_keys=True)

    def save_chrome_trace(self, path: str, pid: int = 0, tid: int = 0) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_chrome_json(pid=pid, tid=tid))
            handle.write("\n")

    def __repr__(self) -> str:
        return (f"Tracer(roots={len(self.roots)}, "
                f"open={len(self._stack)})")


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)
