from setuptools import setup

setup(
    # numpy backs the vectorized batch simulation backend
    # (repro.simulation.batch_ir / repro.core.expr_batch)
    install_requires=["numpy"],
)
